"""Decision provenance: a per-verdict audit trail for the detector.

The paper's confirmation step (Section IV-D) reduces each pair of
heard identities to one scalar-vs-threshold comparison — and discards
every piece of evidence that produced it.  Fig. 14's false positives
(legitimate vehicles stopped at a red light, RSSI traces genuinely
converged) are impossible to diagnose from a bare flag.  This module
records, for **every compared pair in every**
:meth:`~repro.core.detector.VoiceprintDetector.detect` **call**, a
structured audit bundle:

* the observer id and detection period (set by the evaluation harness
  via :func:`set_audit_context`),
* per-identity window evidence — length, SHA-256 of the raw window
  bytes, the normalisation stats (``mean`` and ``divisor`` such that
  ``(raw - mean) / divisor`` reproduces the normalised series
  bit-identically), and optionally the raw window itself (base64 of
  the float64 little-endian bytes, exact by construction),
* per-pair decision evidence — raw / min–max-normalised / judged DTW
  distance, the signed margin ``(distance - threshold) / threshold``,
  the provenance tag (``exact`` kernel run, ``cache-hit`` with the
  cache-key digest, or ``pruned-*`` with the deciding bound), the flag,
  and the confirmation outcome,
* the detection context — density, threshold, band radius, kernel and
  normalisation configuration, ``scale_tag``.

Bundles stream into a bounded :class:`AuditLog`: a ring of the most
recent detections in memory, plus one JSON line per detection on disk
when an output path is set (``--audit-out``), claimed through the
flight-recorder ``out.N`` indexing so reruns never clobber evidence.

Because the bundle carries the exact window bytes and the exact
normalisation divisor, any recorded ``exact`` pair can be **replayed**:
:func:`replay_pair` rebuilds the normalised series, runs it through a
fresh :class:`~repro.core.pairwise.PairwiseEngine` with the recorded
configuration, and must reproduce the recorded distance bit-for-bit
(:func:`verify_bundle`, surfaced as ``repro explain --verify``).  That
replay contract is what future kernel backends and incremental-DTW
variants are diffed against.

Everything is **off by default**: :func:`default_audit_log` returns
``None`` until :func:`start_default` installs a log, and the detector's
hot path checks exactly that one ``None`` before doing any audit work —
the same zero-overhead discipline as the sampling profiler.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import threading
from collections import deque
from typing import IO, Any, Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .paths import indexed_path

__all__ = [
    "AuditLog",
    "DEFAULT_NEAR_MISS_EPSILON",
    "SCHEMA_VERSION",
    "decode_window",
    "default_audit_log",
    "encode_window",
    "get_audit_context",
    "get_near_miss_epsilon",
    "iter_pair_records",
    "load_audit_log",
    "make_detection_bundle",
    "normalised_window",
    "replay_pair",
    "restart_in_child",
    "set_audit_context",
    "set_near_miss_epsilon",
    "signed_margin",
    "start_default",
    "stop_default",
    "verify_bundle",
    "window_digest",
]

#: Audit-record schema version (bumped on incompatible field changes;
#: see DESIGN.md §5e for the field-by-field contract).
SCHEMA_VERSION = 1

#: Snapshot format version for cross-process merge.
SNAPSHOT_VERSION = 1

#: Default near-miss margin: a verdict whose |signed margin| falls
#: under this is "fragile" — the distance sat within 5 % of the
#: threshold, so tiny RSSI perturbations could flip it.
DEFAULT_NEAR_MISS_EPSILON = 0.05

_near_miss_epsilon = DEFAULT_NEAR_MISS_EPSILON

#: (observer id, detection period) stamped into bundles recorded next —
#: set by the evaluation harness around each detector's replay loop.
_context: Tuple[Optional[str], Optional[int]] = (None, None)


# ----------------------------------------------------------------------
# Margin + context knobs
# ----------------------------------------------------------------------
def get_near_miss_epsilon() -> float:
    """The current near-miss margin threshold ε."""
    return _near_miss_epsilon


def set_near_miss_epsilon(epsilon: float) -> float:
    """Set ε (must be positive); returns the previous value."""
    global _near_miss_epsilon
    if not (epsilon > 0.0):
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    previous = _near_miss_epsilon
    _near_miss_epsilon = float(epsilon)
    return previous


def set_audit_context(
    observer: Optional[str] = None, period: Optional[int] = None
) -> Tuple[Optional[str], Optional[int]]:
    """Stamp (observer, period) onto subsequent bundles; returns previous."""
    global _context
    previous = _context
    _context = (observer, period)
    return previous


def get_audit_context() -> Tuple[Optional[str], Optional[int]]:
    """The (observer, period) pair bundles are currently stamped with."""
    return _context


def signed_margin(distance: float, threshold: float) -> float:
    """Signed distance-to-threshold margin ``(d - T) / T``.

    Negative means flagged-side (distance under the threshold), positive
    cleared-side; magnitude is the relative slack.  A zero threshold has
    no relative scale: the margin is ±inf by sign of the distance (0.0
    for an exactly-zero distance, which the rule flags).
    """
    if threshold != 0.0:
        return (distance - threshold) / threshold
    if distance == 0.0:
        return 0.0
    return math.copysign(math.inf, distance)


# ----------------------------------------------------------------------
# Window evidence encoding
# ----------------------------------------------------------------------
def window_digest(values: np.ndarray) -> str:
    """SHA-256 hex digest of a window's float64 little-endian bytes."""
    data = np.ascontiguousarray(values, dtype="<f8").tobytes()
    return hashlib.sha256(data).hexdigest()


def encode_window(values: np.ndarray) -> str:
    """Base64 of the float64 little-endian bytes — exact, not rounded."""
    data = np.ascontiguousarray(values, dtype="<f8").tobytes()
    return base64.b64encode(data).decode("ascii")


def decode_window(text: str) -> np.ndarray:
    """Inverse of :func:`encode_window` (a fresh writable array)."""
    raw = base64.b64decode(text.encode("ascii"))
    return np.frombuffer(raw, dtype="<f8").astype(float)


def _cache_key_digest(
    key: Optional[tuple], memo: Dict[bytes, str]
) -> Optional[str]:
    """Loggable id for an engine cache key (None when uncached).

    The raw key is ``(bytes_a, bytes_b, scale_tag)`` with the full
    window bytes of both series — far too big to log, and hashing the
    3 KiB concatenation per pair was the dominant audit-on hot-path
    cost.  Instead each side's bytes are digested once per detection
    (memoised across the O(n²) pairs that share them) and the key id is
    the two truncated digests plus the scale tag — deterministic across
    processes and runs, so a cache hit always reproduces the id of the
    exact computation that populated the cache.
    """
    if key is None:
        return None
    bytes_a, bytes_b, scale_tag = key
    digest_a = memo.get(bytes_a)
    if digest_a is None:
        digest_a = memo[bytes_a] = hashlib.sha256(bytes_a).hexdigest()
    digest_b = memo.get(bytes_b)
    if digest_b is None:
        digest_b = memo[bytes_b] = hashlib.sha256(bytes_b).hexdigest()
    return f"{digest_a[:24]}.{digest_b[:24]}.{scale_tag}"


# ----------------------------------------------------------------------
# Bundle construction (called from the detector hot path — keep lean)
# ----------------------------------------------------------------------
def make_detection_bundle(
    report: Any,
    config: Any,
    scale_tag: str,
    series: Dict[str, Dict[str, Any]],
    provenance: Optional[Dict[Tuple[str, str], Dict[str, Any]]],
    observer: Optional[str],
    period: Optional[int],
    store_windows: bool = True,
    correlation_id: Optional[str] = None,
) -> Dict[str, Any]:
    """One JSON-ready audit bundle for a finished detection.

    Args:
        report: The :class:`~repro.core.detector.DetectionReport`.
        config: The detector's :class:`~repro.core.detector.DetectorConfig`.
        scale_tag: Scale fingerprint of this detection's normalisation.
        series: Identity → ``{"values": raw window, "mean": float,
            "divisor": float}`` captured during normalisation.  A zero
            divisor marks the constant-series degenerate case where the
            normalised window is all zeros (z-score σ-floor).
        provenance: Per-pair provenance from the engine (None ⇒ every
            pair was an exact legacy-loop evaluation).
        observer: Observer id from :func:`get_audit_context`.
        period: Detection-period index from :func:`get_audit_context`.
        store_windows: Embed the raw window bytes (required for replay).
        correlation_id: The lineage trace's correlation id for this
            detection, when one is in flight — the join key shared
            with the trace ring and the flight recorder (additive
            field; the schema version is unchanged because absent ⇒
            ``None`` and no consumer requires it).
    """
    raw = report.raw_distances
    flagged = set(report.sybil_pairs)
    sybil_ids = set(report.sybil_ids)
    judged = (
        report.distances if config.threshold_on == "normalized" else raw
    )

    series_records: Dict[str, Dict[str, Any]] = {}
    for identity in report.compared_ids:
        info = series.get(identity)
        if info is None:
            continue
        values = np.asarray(info["values"], dtype=float)
        record: Dict[str, Any] = {
            "len": int(values.size),
            "sha256": window_digest(values),
            "mean": float(info["mean"]),
            "divisor": float(info["divisor"]),
        }
        if store_windows:
            record["window_b64"] = encode_window(values)
        series_records[identity] = record

    pair_records: List[Dict[str, Any]] = []
    key_memo: Dict[bytes, str] = {}
    for pair in sorted(raw):
        a, b = pair
        pair_prov = (provenance or {}).get(pair) or {"tag": "exact"}
        pair_records.append(
            {
                "a": a,
                "b": b,
                "raw_distance": float(raw[pair]),
                "normalized_distance": (
                    float(report.distances[pair])
                    if pair in report.distances
                    else None
                ),
                "judged_distance": (
                    float(judged[pair]) if pair in judged else None
                ),
                "margin": report.margins.get(pair),
                "provenance": pair_prov["tag"],
                "cache_key": _cache_key_digest(
                    pair_prov.get("key"), key_memo
                ),
                "bound": pair_prov.get("bound"),
                "flagged": pair in flagged,
                "confirmed_ids": [i for i in pair if i in sybil_ids],
            }
        )

    return {
        "type": "detection",
        "schema": SCHEMA_VERSION,
        "observer": observer,
        "period": period,
        "correlation_id": correlation_id,
        "timestamp": float(report.timestamp),
        "density": float(report.density),
        "threshold": float(report.threshold),
        "threshold_on": config.threshold_on,
        "scale_mode": config.scale_mode,
        "scale_tag": scale_tag,
        "sigma_multiplier": float(config.sigma_multiplier),
        "band_radius": config.band_radius_samples,
        "use_exact_dtw": bool(config.use_exact_dtw),
        "fastdtw_radius": config.fastdtw_radius,
        "normalize_by_path_length": bool(config.normalize_by_path_length),
        "compared": list(report.compared_ids),
        "skipped": list(report.skipped_ids),
        "sybil_ids": sorted(sybil_ids),
        "series": series_records,
        "pairs": pair_records,
    }


# ----------------------------------------------------------------------
# The audit log (ring + JSONL stream)
# ----------------------------------------------------------------------
class AuditLog:
    """Bounded store of detection audit bundles.

    Keeps the most recent ``capacity`` bundles in a ring (post-mortem
    inspection without a disk sink, flight-recorder style) and, when
    ``out`` is set, additionally streams **every** bundle as one JSON
    line to disk — the file is claimed lazily on first write through
    :func:`~repro.obs.paths.indexed_path`, so repeated runs write
    ``audit.jsonl``, ``audit.jsonl.1``, ... instead of clobbering.

    Args:
        out: JSONL destination path, or None for in-memory only.
        capacity: Ring size in detections (not pairs).
        store_windows: Embed raw window bytes in bundles — required for
            ``repro explain --verify`` replay, so on by default; turn
            off to shrink logs when only margins/provenance matter.
    """

    def __init__(
        self,
        out: Optional[str] = None,
        capacity: int = 256,
        store_windows: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.out = out
        self.capacity = int(capacity)
        self.store_windows = bool(store_windows)
        self._lock = threading.Lock()
        self._bundles: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._handle: Optional[IO[str]] = None
        self._path: Optional[str] = None
        self.detections = 0
        self.pairs_recorded = 0

    @property
    def path(self) -> Optional[str]:
        """The resolved on-disk path once the stream has opened."""
        return self._path

    @property
    def bundles(self) -> List[Dict[str, Any]]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return list(self._bundles)

    def record_detection(self, bundle: Dict[str, Any]) -> None:
        """Append one bundle to the ring (and the stream, if any)."""
        with self._lock:
            self._bundles.append(bundle)
            self.detections += 1
            self.pairs_recorded += len(bundle.get("pairs", ()))
            if self.out is not None:
                if self._handle is None:
                    self._path = indexed_path(self.out)
                    self._handle = open(self._path, "w", encoding="utf-8")
                self._handle.write(json.dumps(bundle, separators=(",", ":")) + "\n")
                self._handle.flush()

    def dump(self, out: str) -> str:
        """Write the ring's bundles to a fresh indexed path; returns it."""
        path = indexed_path(out)
        with self._lock:
            bundles = list(self._bundles)
        with open(path, "w", encoding="utf-8") as handle:
            for bundle in bundles:
                handle.write(json.dumps(bundle, separators=(",", ":")) + "\n")
        return path

    # -- cross-process folding (same shape as MetricsRegistry) ---------
    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of this log's state for a parent to merge."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "detections": self.detections,
                "pairs_recorded": self.pairs_recorded,
                "bundles": list(self._bundles),
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker's snapshot in: every bundle is re-recorded here
        (so a parent with a disk sink persists workers' evidence), and
        the counters track totals across the whole process tree."""
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"cannot merge audit snapshot version {version!r}"
            )
        dropped = snapshot["detections"] - len(snapshot["bundles"])
        for bundle in snapshot["bundles"]:
            self.record_detection(bundle)
        if dropped > 0:
            # Ring-evicted in the worker before shipping: count them so
            # totals stay honest even though the evidence is gone.
            with self._lock:
                self.detections += dropped

    def close(self) -> None:
        """Close the stream (the ring stays readable)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# Process-global lifecycle (mirrors the sampling profiler's)
# ----------------------------------------------------------------------
_DEFAULT: Optional[AuditLog] = None


def default_audit_log() -> Optional[AuditLog]:
    """The process-global audit log, or None while auditing is off."""
    return _DEFAULT


def start_default(
    out: Optional[str] = None,
    capacity: int = 256,
    store_windows: bool = True,
) -> AuditLog:
    """Install (or return the already-installed) process-global log."""
    global _DEFAULT
    if _DEFAULT is not None:
        return _DEFAULT
    _DEFAULT = AuditLog(
        out=out, capacity=capacity, store_windows=store_windows
    )
    return _DEFAULT


def stop_default() -> Optional[AuditLog]:
    """Uninstall and close the global log; returns it for inspection."""
    global _DEFAULT
    log = _DEFAULT
    _DEFAULT = None
    if log is not None:
        log.close()
    return log


def restart_in_child() -> Optional[AuditLog]:
    """Replace an inherited global log with a fresh in-memory shard.

    After a fork the child shares the parent's stream file descriptor;
    concurrent writes would interleave.  The child therefore records
    into a ring-only shard with the parent's settings and ships a
    :meth:`~AuditLog.snapshot` home, which the parent folds into its
    own (possibly disk-backed) log — the same discipline as the
    profiler and metrics registry.  No-op (returns None) when the
    parent was not auditing.
    """
    global _DEFAULT
    inherited = _DEFAULT
    if inherited is None:
        return None
    _DEFAULT = AuditLog(
        out=None,
        capacity=inherited.capacity,
        store_windows=inherited.store_windows,
    )
    return _DEFAULT


# ----------------------------------------------------------------------
# Reading + replay verification (the `repro explain` substrate)
# ----------------------------------------------------------------------
def load_audit_log(path: str) -> List[Dict[str, Any]]:
    """Parse an audit JSONL file into its detection bundles.

    Raises:
        ValueError: On a malformed line or when no detection records
            are present.
    """
    bundles: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: malformed audit line: {error}"
                ) from error
            if record.get("type") == "detection":
                bundles.append(record)
    if not bundles:
        raise ValueError(f"no detection records in {path}")
    return bundles


def iter_pair_records(
    bundles: List[Dict[str, Any]],
) -> Iterator[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """Yield ``(bundle, pair record)`` across bundles in log order."""
    for bundle in bundles:
        for record in bundle.get("pairs", ()):
            yield bundle, record


def normalised_window(bundle: Dict[str, Any], identity: str) -> np.ndarray:
    """Rebuild one identity's normalised window from its evidence.

    Applies ``(raw - mean) / divisor`` — bit-identical to what the
    detector computed, for both z-score and shared-median scaling (a
    zero divisor is the constant-series case: all-zeros by definition).

    Raises:
        ValueError: When the bundle lacks window bytes, the length
            disagrees, or the bytes fail their recorded SHA-256.
    """
    record = bundle["series"].get(identity)
    if record is None:
        raise ValueError(f"no series evidence for {identity!r}")
    if "window_b64" not in record:
        raise ValueError(
            f"bundle recorded without window bytes for {identity!r} "
            "(store_windows was off); replay is impossible"
        )
    values = decode_window(record["window_b64"])
    if values.size != record["len"]:
        raise ValueError(
            f"window for {identity!r} has {values.size} samples, "
            f"recorded len is {record['len']}"
        )
    if window_digest(values) != record["sha256"]:
        raise ValueError(f"window bytes for {identity!r} fail their SHA-256")
    divisor = record["divisor"]
    if divisor == 0.0:
        return np.zeros_like(values)
    return (values - record["mean"]) / divisor


def _replay_engine(bundle: Dict[str, Any]) -> Any:
    """A fresh engine configured exactly as the recorded detection.

    Imported lazily: ``repro.core`` depends on ``repro.obs``, so the
    reverse import must not happen at module load.
    """
    from ..core.pairwise import PairwiseEngine

    from .metrics import MetricsRegistry

    return PairwiseEngine(
        band_radius=bundle["band_radius"],
        use_exact_dtw=bundle["use_exact_dtw"],
        fastdtw_radius=bundle["fastdtw_radius"],
        normalize_by_path_length=bundle["normalize_by_path_length"],
        pruning=False,
        cache_size=0,
        workers=0,
        registry=MetricsRegistry(),
    )


def replay_pair(bundle: Dict[str, Any], a: str, b: str) -> float:
    """Re-run one recorded pair through :mod:`repro.core.pairwise`.

    Returns the raw (pre-min–max) distance a fresh engine computes from
    the bundle's window evidence — the value the bit-replay contract
    compares against ``raw_distance``.
    """
    arrays = {
        a: normalised_window(bundle, a),
        b: normalised_window(bundle, b),
    }
    distances, _stats = _replay_engine(bundle).compare(arrays)
    (distance,) = distances.values()
    return float(distance)


#: Provenance tags whose recorded distance is an exact kernel result
#: and therefore carries the bit-replay obligation.  ``incremental-carry``
#: records re-report the previous period's exact distance for a window
#: that did not change, so replaying the recorded window reproduces it
#: bit for bit just like a fresh ``exact`` record.
_REPLAYABLE_PROVENANCE = ("exact", "incremental-carry")


def verify_bundle(bundle: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Replay every exact-valued pair of one bundle; one result row each.

    ``exact`` and ``incremental-carry`` records hold exact kernel
    distances and are re-run through a fresh engine.  Pairs decided
    from bounds or abandoned early are reported as skipped — their
    recorded distance is a surrogate — and cache answers were already
    verified when first computed.
    """
    results: List[Dict[str, Any]] = []
    for record in bundle.get("pairs", ()):
        pair = (record["a"], record["b"])
        if record["provenance"] not in _REPLAYABLE_PROVENANCE:
            results.append(
                {
                    "pair": pair,
                    "status": "skipped",
                    "provenance": record["provenance"],
                }
            )
            continue
        recorded = float(record["raw_distance"])
        replayed = replay_pair(bundle, *pair)
        results.append(
            {
                "pair": pair,
                "status": "ok" if replayed == recorded else "MISMATCH",
                "provenance": record["provenance"],
                "recorded": recorded,
                "replayed": replayed,
            }
        )
    return results
