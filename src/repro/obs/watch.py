"""Live operator dashboard — the ``repro watch`` command.

``repro watch`` is the watchtower over a running (or finished)
detector: it renders the :class:`~repro.obs.tsdb.TimeSeriesDB`
trajectory — per-phase latency, throughput, margin health, drift
scores and SLO burn rates — as a plain-text dashboard, either once
(``--once``) or as a follow loop that repaints the terminal every
``--interval`` seconds.  Three sources are understood:

* a **live endpoint** (``http://host:port``) — polls ``GET /series``
  and ``GET /health`` on the :class:`~repro.obs.telemetry.TelemetryServer`
  a run started with ``--serve-telemetry``;
* a **TSDB dump** written by ``--watch-record`` (header record
  ``{"type": "tsdb"}``) — rendered as-is;
* a **Snapshotter JSONL** log written by ``--snapshot-out`` (records
  of ``{"type": "snapshot"}``) — replayed through a fresh
  TSDB + :class:`~repro.obs.drift.DriftMonitor`, so drift/SLO alerts
  are recomputed from the recorded ticks.

Rendering is stdlib + the shared :func:`repro.obs.explain.sparkline`;
ANSI is limited to the clear-screen escape in follow mode (disabled
with ``--once``, so CI logs stay clean).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .drift import DriftMonitor
from .explain import sparkline
from .metrics import MetricsRegistry
from .tsdb import TimeSeriesDB

__all__ = ["WatchFrame", "load_frame", "render_dashboard", "run_watch"]

#: ANSI clear-screen + home, emitted between follow-mode repaints.
_CLEAR = "\x1b[2J\x1b[H"

#: Sparkline width used throughout the dashboard.
_SPARK = 32

#: Most alert lines rendered per frame.
_MAX_ALERTS = 8


@dataclass
class WatchFrame:
    """One dashboard's worth of data, wherever it came from.

    Attributes:
        source: What the user pointed ``repro watch`` at.
        kind: ``live`` / ``tsdb`` / ``snapshots``.
        tsdb: The (possibly replayed) time-series store.
        status: The health status string (``ok`` / ``alert`` / ``n/a``).
        alerts: Alert records (``kind``/``message``/``t``/...), newest
            last.
    """

    source: str
    kind: str
    tsdb: TimeSeriesDB
    status: str = "n/a"
    alerts: List[Dict[str, Any]] = field(default_factory=list)


def _fetch_json(url: str, timeout_s: float) -> Dict[str, Any]:
    """GET a JSON document; non-2xx bodies (the 503 ``/health``) parse
    too."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8", "replace")
        try:
            return json.loads(body)
        except json.JSONDecodeError:
            raise ValueError(
                f"{url} answered {error.code}: {body.strip()!r}"
            ) from error


def _load_live(source: str, timeout_s: float) -> WatchFrame:
    base = source.rstrip("/")
    payload = _fetch_json(f"{base}/series", timeout_s)
    store = TimeSeriesDB.from_payload(payload)
    status, alerts = "n/a", []
    try:
        health = _fetch_json(f"{base}/health", timeout_s)
        status = health.get("status", "n/a")
        alerts = health.get("alerts", [])
    except (ValueError, OSError):
        pass  # /health is optional; the series alone still render
    return WatchFrame(
        source=source, kind="live", tsdb=store, status=status, alerts=alerts
    )


def _replay_snapshots(lines: List[str]) -> WatchFrame:
    """Re-derive the trajectory (and drift/SLO alerts) from a
    Snapshotter JSONL log."""
    store = TimeSeriesDB()
    drift = DriftMonitor(registry=MetricsRegistry(), health=None)
    for line in lines:
        record = json.loads(line)
        if record.get("type") != "snapshot":
            continue
        t = record.get("t")
        if t is None:
            t = record.get("ts", 0.0)
        store.observe_snapshot(record, float(t))
        drift.observe(record, float(t))
    return WatchFrame(
        source="",
        kind="snapshots",
        tsdb=store,
        status="alert" if drift.alerts else "ok",
        alerts=list(drift.alerts),
    )


def load_frame(source: str, timeout_s: float = 5.0) -> WatchFrame:
    """Resolve a watch source (URL, TSDB dump, or snapshot log)."""
    if source.startswith(("http://", "https://")):
        return _load_live(source, timeout_s)
    with open(source, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{source} is empty")
    head = json.loads(lines[0])
    head_type = head.get("type")
    if head_type == "tsdb":
        frame = WatchFrame(
            source=source, kind="tsdb", tsdb=TimeSeriesDB.load_jsonl(lines)
        )
        return frame
    # Snapshot logs may interleave other record kinds (replay skips
    # them), so accept the file if any line is a snapshot record.
    if any(
        json.loads(line).get("type") == "snapshot" for line in lines
    ):
        frame = _replay_snapshots(lines)
        frame.source = source
        return frame
    raise ValueError(
        f"{source}: unrecognised record type {head_type!r} "
        "(want a --watch-record dump or a --snapshot-out log)"
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _series_lasts(store: TimeSeriesDB, name: str) -> np.ndarray:
    return np.asarray(
        [bucket.last for bucket in store.query(name)], dtype=float
    )


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.3g}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def _section(title: str) -> str:
    return f"-- {title} " + "-" * max(0, 58 - len(title))


def render_dashboard(frame: WatchFrame, now: Optional[float] = None) -> str:
    """One dashboard frame as multi-line text (no trailing newline)."""
    store = frame.tsdb
    names = store.series_names()
    lines = [
        f"repro watch — {frame.source or frame.kind}  "
        f"[{frame.kind}]  status={frame.status}  "
        f"series={len(names)}  samples={store.samples}",
    ]

    phases = sorted(
        name[: -len(".p99")]
        for name in names
        if name.startswith("phase.") and name.endswith(".p99")
    )
    if phases:
        lines.append(_section("phase latency (ms)"))
        for base in phases:
            label = base[len("phase."):]
            p99 = _series_lasts(store, f"{base}.p99")
            lines.append(
                f"  {label:<22} p50={_fmt(store.latest(f'{base}.p50')):>8}"
                f"  p99={_fmt(store.latest(f'{base}.p99')):>8}"
                f"  {sparkline(p99, _SPARK)}"
            )

    stages = sorted(
        name[: -len(".p99")]
        for name in names
        if name.startswith("serve.stage.") and name.endswith(".p99")
    )
    if stages:
        lines.append(_section("serve stage latency (ms)"))
        for base in stages:
            label = base[len("serve.stage."):]
            if label.endswith("_ms"):
                label = label[: -len("_ms")]
            p99 = _series_lasts(store, f"{base}.p99")
            lines.append(
                f"  {label:<22} p50={_fmt(store.latest(f'{base}.p50')):>8}"
                f"  p99={_fmt(store.latest(f'{base}.p99')):>8}"
                f"  {sparkline(p99, _SPARK)}"
            )

    rates = [
        name
        for name in names
        if name.startswith("rate.") and name.endswith("_per_s")
    ]
    if rates:
        lines.append(_section("throughput (/s)"))
        for name in rates[:6]:
            label = name[len("rate."): -len("_per_s")]
            lines.append(
                f"  {label:<22} {_fmt(store.latest(name)):>10}"
                f"  {sparkline(_series_lasts(store, name), _SPARK)}"
            )

    margin_rows = [
        ("margin mean", "pipeline.margin.signed.tick_mean"),
        ("near-miss rate", "rate.margin_near_miss_rate"),
        ("cache hit rate", "rate.pairwise_cache_hit_rate"),
        ("flagged-pair rate", "health.flagged_pair_rate"),
    ]
    present = [(label, name) for label, name in margin_rows if name in names]
    if present:
        lines.append(_section("verdict health"))
        for label, name in present:
            lines.append(
                f"  {label:<22} {_fmt(store.latest(name)):>10}"
                f"  {sparkline(_series_lasts(store, name), _SPARK)}"
            )

    signals = sorted(
        name[len("drift."): -len(".cusum")]
        for name in names
        if name.startswith("drift.") and name.endswith(".cusum")
    )
    if signals:
        lines.append(_section("drift scores (accumulated sigmas)"))
        for signal in signals:
            cusum = store.latest(f"drift.{signal}.cusum")
            ph = store.latest(f"drift.{signal}.page_hinkley")
            lines.append(
                f"  {signal:<22} cusum={_fmt(cusum):>8}"
                f"  ph={_fmt(ph):>8}"
                f"  {sparkline(_series_lasts(store, f'drift.{signal}.cusum'), _SPARK)}"
            )

    slos = sorted(
        name[len("slo."): -len(".burn_short")]
        for name in names
        if name.startswith("slo.") and name.endswith(".burn_short")
    )
    if slos:
        lines.append(_section("SLO burn (x budget)"))
        for slo in slos:
            short = store.latest(f"slo.{slo}.burn_short")
            long_ = store.latest(f"slo.{slo}.burn_long")
            burning = (
                short is not None
                and long_ is not None
                and short >= 1.0
                and long_ >= 1.0
            )
            lines.append(
                f"  {slo:<22} short={_fmt(short):>7}  long={_fmt(long_):>7}"
                f"  {sparkline(_series_lasts(store, f'slo.{slo}.burn_short'), _SPARK)}"
                f"{'  ** BURN **' if burning else ''}"
            )

    if frame.alerts:
        lines.append(_section(f"alerts ({len(frame.alerts)})"))
        for alert in frame.alerts[-_MAX_ALERTS:]:
            lines.append(
                f"  [{alert.get('kind', '?')}] t={_fmt(alert.get('t'))}  "
                f"{alert.get('message', '')}"
            )
        hidden = len(frame.alerts) - _MAX_ALERTS
        if hidden > 0:
            lines.append(f"  ... {hidden} earlier alert(s) not shown")
    elif frame.kind != "tsdb":
        lines.append(_section("alerts"))
        lines.append("  none")
    return "\n".join(lines)


def run_watch(
    source: str,
    once: bool = False,
    interval_s: float = 2.0,
    out=None,
    max_frames: Optional[int] = None,
    sleep=time.sleep,
) -> str:
    """The ``repro watch`` entry point.

    Args:
        source: Endpoint URL, TSDB dump, or snapshot JSONL path.
        once: Render a single frame without ANSI clearing and return.
        interval_s: Repaint period in follow mode.
        out: Text stream to write to (default: stdout).
        max_frames: Stop after this many frames (tests; None = forever).
        sleep: Injectable pause (tests).

    Returns:
        The last rendered frame.
    """
    import sys

    if interval_s <= 0:
        raise ValueError(f"interval must be positive, got {interval_s}")
    stream = out if out is not None else sys.stdout
    frames = 0
    text = ""
    while True:
        try:
            frame = load_frame(source)
            text = render_dashboard(frame)
        except (OSError, urllib.error.URLError) as error:
            if once or not source.startswith(("http://", "https://")):
                raise
            text = f"repro watch — waiting for {source} ({error})"
        if once:
            stream.write(text + "\n")
            return text
        stream.write(_CLEAR + text + "\n")
        stream.flush()
        frames += 1
        if max_frames is not None and frames >= max_frames:
            return text
        try:
            sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return text
