"""Thread-safe in-process metrics: counters, gauges, histograms.

The registry is the one place runtime behaviour is aggregated: the
detector counts pairwise comparisons and DTW cells, the simulator counts
dispatched events and delivered beacons, and every latency-sensitive
stage records into a histogram (via :class:`repro.obs.timers.Stopwatch`).

Two usage modes:

* **Process-global** — instrumented modules default to
  :func:`default_registry`, which starts *disabled* so the library costs
  nothing unless observability is switched on (``repro.obs.configure``
  or the CLI's ``--metrics-out``).
* **Injected** — components accept a ``registry`` argument, so tests and
  embedders can observe one component in isolation with a private,
  always-enabled :class:`MetricsRegistry`.

Disabled instruments keep accepting calls and drop them after a single
boolean check, so call sites never need their own guards.
"""

from __future__ import annotations

import json
import random
import threading
import zlib
from typing import Dict, IO, Iterator, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]


class Counter:
    """Monotonically increasing counter (events, beacons, pairs, cells)."""

    __slots__ = ("name", "_registry", "_value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        registry = self._registry
        if not registry._enabled:
            return
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with registry._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current accumulated count."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """Last-written value (density estimate, confirmed-Sybil count)."""

    __slots__ = ("name", "_registry", "_value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._value: Optional[float] = None

    def set(self, value: Union[int, float]) -> None:
        """Overwrite the gauge with the latest observation."""
        registry = self._registry
        if not registry._enabled:
            return
        with registry._lock:
            self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        """Most recently set value, or None if never set."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """Sample distribution with count/sum/min/max and percentile summaries.

    Below ``max_samples`` every sample is kept raw and percentiles are
    exact, using the nearest-rank rule (``p50`` of a single sample is
    that sample).  With no cap (the default for short-lived,
    per-experiment registries) that stays true forever — but raw
    samples grow without bound, which is a real leak for a long online
    run feeding the telemetry snapshotter.  Passing ``max_samples``
    switches the histogram to **reservoir sampling** (Vitter's
    Algorithm R) once the cap is reached: ``count``/``sum``/``min``/
    ``max`` remain exact, while percentiles become nearest-rank
    estimates over a uniform random sample of everything observed.  The
    reservoir RNG is seeded from the metric name, so runs are
    reproducible.
    """

    __slots__ = (
        "name",
        "_registry",
        "_values",
        "_max_samples",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
    )

    #: Percentiles included in :meth:`summary`.
    PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        max_samples: Optional[int] = None,
    ) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self._registry = registry
        self._values: List[float] = []
        self._max_samples = max_samples
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: Union[int, float]) -> None:
        """Record one sample."""
        registry = self._registry
        if not registry._enabled:
            return
        value = float(value)
        with registry._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            cap = self._max_samples
            if cap is None or len(self._values) < cap:
                self._values.append(value)
            else:
                # Algorithm R: keep each of the _count samples seen so
                # far in the reservoir with probability cap/_count.
                slot = self._rng.randrange(self._count)
                if slot < cap:
                    self._values[slot] = value

    @property
    def count(self) -> int:
        """Number of recorded samples (exact, even past the cap)."""
        return self._count

    @property
    def max_samples(self) -> Optional[int]:
        """Reservoir capacity, or None when all samples are kept."""
        return self._max_samples

    @property
    def samples_kept(self) -> int:
        """Samples currently held (== count until the cap is reached)."""
        return len(self._values)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile ``q`` in [0, 100]; None when empty.

        Exact while every sample is retained; a reservoir estimate once
        the cap has been exceeded.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._registry._lock:
            values = sorted(self._values)
        if not values:
            return None
        rank = max(1, -(-int(q * len(values)) // 100))  # ceil(q*n/100), >= 1
        return values[min(rank, len(values)) - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        """count/sum/mean/min/max plus p50/p95/p99 (None when empty).

        count/sum/mean/min/max are always exact; the percentiles come
        from the retained samples (see class docstring).
        """
        with self._registry._lock:
            values = sorted(self._values)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        if not values:
            return {
                "count": 0,
                "sum": 0.0,
                "mean": None,
                "min": None,
                "max": None,
                "p50": None,
                "p95": None,
                "p99": None,
            }
        n = len(values)

        def rank(q: float) -> float:
            r = max(1, -(-int(q * n) // 100))
            return values[min(r, n) - 1]

        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
            "p50": rank(50.0),
            "p95": rank(95.0),
            "p99": rank(99.0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self._count})"


class MetricsRegistry:
    """Named collection of counters, gauges, and histograms.

    Instruments are created on first use and shared thereafter; asking
    for an existing name with a different instrument kind raises.  All
    mutation goes through one re-entrant lock, which is plenty for the
    call rates involved (the hot loops spend their time in DTW, not in
    counter bumps).

    Args:
        enabled: When False every instrument is a no-op until
            :meth:`enable` is called.  Explicitly constructed registries
            default to enabled; the process-global one starts disabled.
        histogram_max_samples: Default reservoir cap applied to
            histograms created *after* it is set (see
            :class:`Histogram`).  ``None`` (default) keeps every sample.
    """

    def __init__(
        self,
        enabled: bool = True,
        histogram_max_samples: Optional[int] = None,
    ) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.histogram_max_samples = histogram_max_samples

    # -- lifecycle -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether instruments currently record anything."""
        return self._enabled

    def enable(self) -> None:
        """Start recording."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording (existing values are kept)."""
        self._enabled = False

    def reset(self) -> None:
        """Drop every instrument and its data (for test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- instrument access ---------------------------------------------
    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unique(name, "counter")
                instrument = Counter(name, self)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unique(name, "gauge")
                instrument = Gauge(name, self)
                self._gauges[name] = instrument
            return instrument

    def histogram(
        self, name: str, max_samples: Optional[int] = None
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``max_samples`` (falling back to the registry-wide
        ``histogram_max_samples``) caps the raw-sample reservoir; it
        only applies when the call *creates* the histogram.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unique(name, "histogram")
                cap = (
                    max_samples
                    if max_samples is not None
                    else self.histogram_max_samples
                )
                instrument = Histogram(name, self, max_samples=cap)
                self._histograms[name] = instrument
            return instrument

    # -- cross-process snapshot/merge ----------------------------------
    #: Format version stamped into :meth:`snapshot` payloads.
    SNAPSHOT_VERSION = 1

    def snapshot(self) -> Dict[str, object]:
        """Full-fidelity, JSON-serialisable dump of every instrument.

        Unlike :meth:`to_dict` (which *summarises* histograms), the
        snapshot keeps each histogram's retained raw samples alongside
        its exact count/sum/min/max, so another registry can fold it in
        with :meth:`merge` without losing percentile information.  This
        is the wire format ``repro.eval.parallel`` workers use to ship
        their per-process metrics back to the parent.
        """
        with self._lock:
            histograms: Dict[str, Dict[str, object]] = {}
            for name, h in sorted(self._histograms.items()):
                histograms[name] = {
                    "count": h._count,
                    "sum": h._sum,
                    "min": h._min,
                    "max": h._max,
                    "max_samples": h._max_samples,
                    "values": list(h._values),
                }
            return {
                "version": self.SNAPSHOT_VERSION,
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": histograms,
            }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges take the snapshot's value when it was ever
        set (last merge wins), and histograms combine exactly for
        count/sum/min/max.  Retained histogram samples are concatenated;
        when that exceeds a reservoir cap the combined pool is
        downsampled with the histogram's deterministic RNG, so merged
        percentiles stay estimates of the union, not of one side.

        Merging into a *disabled* registry is a no-op, mirroring how a
        disabled instrument drops direct recordings — parallel replay
        stays metrics-silent unless observability is configured, exactly
        like the serial path.
        """
        if not self._enabled:
            return
        version = snapshot.get("version")
        if version != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported metrics snapshot version {version!r} "
                f"(expected {self.SNAPSHOT_VERSION})"
            )
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            counter = self.counter(name)
            with self._lock:
                counter._value += float(value)
        for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            if value is not None:
                self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            if not payload["count"]:
                # Touch the instrument so it exists, but nothing to add.
                self.histogram(name, max_samples=payload["max_samples"])
                continue
            histogram = self.histogram(name, max_samples=payload["max_samples"])
            with self._lock:
                histogram._count += int(payload["count"])
                histogram._sum += float(payload["sum"])
                for bound in ("min", "max"):
                    incoming = payload[bound]
                    if incoming is None:
                        continue
                    current = getattr(histogram, f"_{bound}")
                    if (
                        current is None
                        or (bound == "min" and incoming < current)
                        or (bound == "max" and incoming > current)
                    ):
                        setattr(histogram, f"_{bound}", float(incoming))
                histogram._values.extend(float(v) for v in payload["values"])
                cap = histogram._max_samples
                if cap is not None and len(histogram._values) > cap:
                    histogram._values = histogram._rng.sample(
                        histogram._values, cap
                    )

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of everything recorded, JSON-serialisable."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """One flat record per instrument (the JSONL row format)."""
        snapshot = self.to_dict()
        for name, value in snapshot["counters"].items():
            yield {"type": "counter", "name": name, "value": value}
        for name, value in snapshot["gauges"].items():
            yield {"type": "gauge", "name": name, "value": value}
        for name, summary in snapshot["histograms"].items():
            yield {"type": "histogram", "name": name, **summary}

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON line per instrument; returns lines written."""
        records = list(self.iter_records())
        if hasattr(destination, "write"):
            for record in records:
                destination.write(json.dumps(record) + "\n")  # type: ignore[union-attr]
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        return len(records)


#: The process-global registry instrumented modules default to.  It
#: starts disabled so that importing/using the library records nothing
#: until observability is explicitly configured.
_DEFAULT = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    """The process-global registry (disabled until configured)."""
    return _DEFAULT
