"""Prometheus text-format exposition for a :class:`MetricsRegistry`.

Voiceprint is an *online* detector: a deployed OBU (or the long-running
simulation standing in for one) needs its counters and latency
histograms scrapeable while the run is in flight, not only dumped as
JSONL after it ends.  :func:`render_prometheus` turns a registry
snapshot into the Prometheus text exposition format (version 0.0.4),
which the stdlib HTTP endpoint in :mod:`repro.obs.telemetry` serves at
``/metrics``.

Mapping:

* counters  → ``<ns>_<name>_total`` (``# TYPE ... counter``),
* gauges    → ``<ns>_<name>`` (``# TYPE ... gauge``; unset gauges are
  omitted — Prometheus has no "never written" value),
* histograms → a summary-style family: ``{quantile="0.5|0.95|0.99"}``
  series plus ``_sum`` and ``_count`` (``# TYPE ... summary``).  The
  registry keeps raw samples (optionally reservoir-capped), not fixed
  buckets, so a summary is the honest rendering.  The serve layer's
  per-stage lineage histograms (``serve.stage.queue_wait_ms`` etc.,
  see :mod:`repro.obs.lineage`) surface the same way, e.g.
  ``repro_serve_stage_queue_wait_ms{quantile="0.99"}``.

Metric names like ``detector.pairs_compared`` are sanitised to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset (dots become underscores); label
values are escaped per the exposition spec.  Everything is stdlib-only
and allocation-light: one snapshot, one string build.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Union

from .metrics import MetricsRegistry

__all__ = [
    "escape_label_value",
    "sanitize_metric_name",
    "render_prometheus",
    "CONTENT_TYPE",
]

#: The Content-Type a conforming scraper expects for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def sanitize_metric_name(name: str) -> str:
    """Coerce an internal metric name into a legal Prometheus name.

    Dots (our namespace separator) and every other illegal character
    become underscores; a leading digit gains an underscore prefix.
    Empty input maps to a single underscore.

    >>> sanitize_metric_name("detector.pairs_compared")
    'detector_pairs_compared'
    >>> sanitize_metric_name("99-luftballons")
    '_99_luftballons'
    """
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized:
        return "_"
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition spec.

    Backslash, double quote and newline are the three characters the
    format reserves inside ``label="..."``; everything else passes
    through verbatim (UTF-8 is legal in label values).

    >>> escape_label_value('say "hi"\\n')
    'say \\\\"hi\\\\"\\\\n'
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: Union[int, float]) -> str:
    """Render a sample value per the exposition grammar."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """Render everything the registry recorded as exposition text.

    Args:
        registry: Source of the snapshot (taken atomically via
            :meth:`MetricsRegistry.to_dict`).
        namespace: Prefix for every exported family (sanitised too);
            pass ``""`` for no prefix.

    Returns:
        The full scrape body, newline-terminated (empty registries
        yield an empty string — still a valid scrape).
    """
    snapshot = registry.to_dict()
    prefix = f"{sanitize_metric_name(namespace)}_" if namespace else ""
    lines: List[str] = []

    counters: Dict[str, float] = snapshot["counters"]  # type: ignore[assignment]
    for name, value in counters.items():
        family = f"{prefix}{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format_value(value)}")

    gauges: Dict[str, Optional[float]] = snapshot["gauges"]  # type: ignore[assignment]
    for name, value in gauges.items():
        if value is None:
            continue
        family = f"{prefix}{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(value)}")

    histograms: Dict[str, Dict[str, Optional[float]]] = snapshot["histograms"]  # type: ignore[assignment]
    for name, summary in histograms.items():
        family = f"{prefix}{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {family} summary")
        for quantile, key in _QUANTILES:
            value = summary[key]
            if value is not None:
                label = escape_label_value(str(quantile))
                lines.append(
                    f'{family}{{quantile="{label}"}} {_format_value(value)}'
                )
        # _sum/_count always render, even for an empty histogram:
        # rate()-style PromQL (and the SLO burn-rate math built on it)
        # needs both series present from the first scrape onward.
        lines.append(f"{family}_sum {_format_value(summary['sum'] or 0.0)}")
        lines.append(f"{family}_count {_format_value(summary['count'] or 0)}")

    return "\n".join(lines) + "\n" if lines else ""
