"""Streaming health monitoring for the online Voiceprint pipeline.

The paper's detector runs Collection → Comparison → Confirmation
continuously on the control channel; a deployed OBU needs to know when
any of those phases goes unhealthy *while driving*, not from a
post-run JSONL dump.  :class:`HealthMonitor` watches one
:class:`~repro.core.pipeline.OnlineVoiceprint` through two entry
points the pipeline calls when a monitor is attached:

* :meth:`beat` on every received beacon — the **Collection** watchdog.
  A gap longer than ``max_silence_s`` between consecutive beacons (or
  between the last beacon and an external :meth:`check`) means the
  radio, the channel, or the detector feeding loop stalled.
* :meth:`on_report` on every detection period — sliding-window gauges
  over the **Comparison** latency (wall ms per detection), the
  **Confirmation** flagged-pair rate (flagged pairs / compared pairs),
  and the Eq. 9 density estimate, whose drift against the recent
  median catches a broken density feed before it skews the threshold.

Each threshold breach fires a structured :class:`Alert`: a
``key=value`` WARNING log line, a ``health.alerts`` counter bump,
gauges for the latest windowed values, and every registered hook (the
flight recorder registers one to dump a post-mortem).  Everything is
sized by ``HealthThresholds.window`` and costs nothing when no monitor
is attached — the pipeline's fast path only does a ``None`` check.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, fields
from typing import Any, Callable, Deque, Dict, List, Optional

from .audit import get_near_miss_epsilon
from .logging import get_logger
from .metrics import MetricsRegistry, default_registry

__all__ = [
    "Alert",
    "HealthThresholds",
    "HealthMonitor",
    "default_monitor",
    "set_default_monitor",
]

_log = get_logger("obs.health")


@dataclass(frozen=True)
class Alert:
    """One health-threshold breach.

    Attributes:
        kind: Signal that tripped (``beacon_gap``, ``silence``,
            ``detect_latency``, ``flagged_pair_rate``,
            ``density_drift``, ``fragile_verdict_rate``; external
            producers add ``metric_drift`` and ``slo_burn`` — see
            :class:`repro.obs.drift.DriftMonitor` — via
            :meth:`HealthMonitor.notify`).
        message: Human-readable one-liner.
        t: Pipeline/beacon timestamp the breach was observed at.
        value: The observed value.
        threshold: The configured limit it crossed.
    """

    kind: str
    message: str
    t: float
    value: float
    threshold: float

    def to_record(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view (flight-recorder row format)."""
        return {
            "kind": self.kind,
            "message": self.message,
            "t": self.t,
            "value": self.value,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class HealthThresholds:
    """Alert limits; ``None`` disables the corresponding check.

    Attributes:
        max_silence_s: Longest tolerated gap without a beacon
            (Collection staleness watchdog).
        max_detect_ms: Slowest tolerated detection wall time
            (Comparison latency).
        max_flagged_pair_rate: Largest tolerated fraction of compared
            pairs flagged in one period (Confirmation sanity — a rate
            near 1.0 means the threshold line or normalisation broke,
            not that the road is full of Sybils).
        max_density_drift: Largest tolerated relative deviation of a
            period's density from the sliding-window median.
        max_fragile_verdict_rate: Largest tolerated fraction of a
            period's verdicts whose |signed margin| sits under the
            near-miss ε (see :func:`repro.obs.audit.get_near_miss_epsilon`)
            — verdicts clustered at the threshold boundary flip under
            tiny RSSI perturbations, so a high rate means the decisions
            are fragile even when they happen to be right.
        window: Number of recent detection periods kept for the
            sliding statistics.
    """

    max_silence_s: Optional[float] = None
    max_detect_ms: Optional[float] = None
    max_flagged_pair_rate: Optional[float] = None
    max_density_drift: Optional[float] = None
    max_fragile_verdict_rate: Optional[float] = None
    window: int = 10

    #: CLI spelling → field name (``--health-thresholds silence=30,...``).
    _ALIASES = {
        "silence": "max_silence_s",
        "detect_ms": "max_detect_ms",
        "flag_rate": "max_flagged_pair_rate",
        "density_drift": "max_density_drift",
        "fragile_rate": "max_fragile_verdict_rate",
        "window": "window",
    }

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name != "window" and value is not None and value <= 0:
                raise ValueError(
                    f"{field.name} must be positive, got {value}"
                )

    @classmethod
    def from_spec(cls, spec: str) -> "HealthThresholds":
        """Parse a ``key=value,key=value`` CLI spec.

        Keys are the short CLI aliases (``silence``, ``detect_ms``,
        ``flag_rate``, ``density_drift``, ``window``) or the full field
        names — e.g. ``"silence=30,detect_ms=250,flag_rate=0.5"``.
        """
        kwargs: Dict[str, Any] = {}
        known = {f.name for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad health-threshold entry {part!r} (want key=value)"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            name = cls._ALIASES.get(key, key)
            if name not in known or name.startswith("_"):
                raise ValueError(f"unknown health threshold {key!r}")
            try:
                kwargs[name] = int(raw) if name == "window" else float(raw)
            except ValueError as error:
                raise ValueError(
                    f"bad value for health threshold {key!r}: {raw!r}"
                ) from error
        return cls(**kwargs)


class HealthMonitor:
    """Sliding-window health gauges + threshold alerts for one pipeline.

    Args:
        thresholds: Alert limits (default: everything disabled, gauges
            still maintained).
        registry: Metrics registry the windowed gauges and the
            ``health.alerts`` counter live in; defaults to the
            process-global one.
        max_alerts: Ring capacity for :attr:`recent_alerts`.
        clock: Which timebase the silence/staleness watchdog measures
            gaps in — the **clock-source contract**:

            * ``"event"`` (default — simulations and trace replays):
              gaps are measured between *beacon timestamps*.  A replay
              running faster or slower than real time sees exactly the
              silences recorded in the trace, never artefacts of the
              replay speed.  :meth:`check` requires an event-time
              ``now`` in this mode.
            * ``"wall"`` (live services — ``repro.serve``): gaps are
              measured between the *wall-clock arrival times* of
              beats.  Beacon timestamps are kept only for status and
              alert context; a stalled radio or ingestion loop fires
              regardless of what the (possibly bogus or replayed)
              beacon timestamps claim.

            :meth:`watchdog` — the external staleness tick driven by
            the :class:`~repro.obs.telemetry.Snapshotter` — is always
            wall-based: from a background thread, "the feed stalled"
            is only meaningful in wall time.
        wall_clock: Wall time source (injectable for tests; defaults
            to :func:`time.monotonic`).

    Thread-safe: the simulator feeds beacons from the event loop while
    the telemetry HTTP thread reads :meth:`status`.
    """

    def __init__(
        self,
        thresholds: Optional[HealthThresholds] = None,
        registry: Optional[MetricsRegistry] = None,
        max_alerts: int = 64,
        clock: str = "event",
        wall_clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if clock not in ("event", "wall"):
            raise ValueError(
                f"clock must be 'event' or 'wall', got {clock!r}"
            )
        self.thresholds = thresholds or HealthThresholds()
        self.clock = clock
        self._wall_clock = wall_clock
        metrics = registry if registry is not None else default_registry()
        self._lock = threading.Lock()
        window = self.thresholds.window
        self._latencies: Deque[float] = deque(maxlen=window)
        self._flag_rates: Deque[float] = deque(maxlen=window)
        self._densities: Deque[float] = deque(maxlen=window)
        self._fragile_rates: Deque[float] = deque(maxlen=window)
        self._last_beacon_t: Optional[float] = None
        self._last_beat_wall: Optional[float] = None
        self._reports = 0
        self._hooks: List[Callable[[Alert], None]] = []
        self._n_alerts = 0
        self.recent_alerts: Deque[Alert] = deque(maxlen=max_alerts)
        self._c_alerts = metrics.counter("health.alerts")
        self._g_latency = metrics.gauge("health.detect_latency_ms")
        self._g_flag_rate = metrics.gauge("health.flagged_pair_rate")
        self._g_density_drift = metrics.gauge("health.density_drift")
        self._g_silence = metrics.gauge("health.beacon_gap_s")
        self._g_feed_silence = metrics.gauge("health.feed_silence_s")
        self._g_fragile = metrics.gauge("health.fragile_verdict_rate")

    # -- wiring --------------------------------------------------------
    def add_hook(self, hook: Callable[[Alert], None]) -> None:
        """Register a callback fired (synchronously) per alert."""
        self._hooks.append(hook)

    def attach_recorder(self, recorder: "Any") -> None:
        """Wire a flight recorder: alerts trigger its post-mortem dump
        and every detection report lands in its ring buffer."""
        self.add_hook(recorder.on_alert)
        self._recorder = recorder

    _recorder: Optional[Any] = None

    # -- feeding -------------------------------------------------------
    def beat(self, t: float) -> None:
        """Record one received beacon at pipeline timestamp ``t``.

        Detects *retroactive* gaps: the beacon that ends a silence
        longer than ``max_silence_s`` fires a ``beacon_gap`` alert.
        The gap is measured in the configured clock source — beacon
        timestamps in ``"event"`` mode, beat arrival wall time in
        ``"wall"`` mode (see the class docstring).
        """
        limit = self.thresholds.max_silence_s
        wall = self._wall_clock()
        with self._lock:
            last_t = self._last_beacon_t
            last_wall = self._last_beat_wall
            self._last_beacon_t = t
            self._last_beat_wall = wall
        if self.clock == "wall":
            if last_wall is None:
                return
            gap = wall - last_wall
        else:
            if last_t is None:
                return
            gap = t - last_t
        self._g_silence.set(gap)
        if limit is not None and gap > limit:
            self._alert(
                "beacon_gap",
                f"no beacons for {gap:.1f}s (limit {limit:.1f}s)",
                t=t,
                value=gap,
                threshold=limit,
            )

    def check(self, now: Optional[float] = None) -> Optional[Alert]:
        """Ongoing-silence check against an explicit "now".

        Fires a ``silence`` alert when the detector has heard beacons
        before but none for longer than ``max_silence_s`` as of
        ``now`` — the *ongoing*-stall complement of :meth:`beat`'s
        retroactive gap detection.

        ``now`` must be in the monitor's clock source: an event-time
        timestamp in ``"event"`` mode (required — there is no ambient
        event clock to default to), a ``wall_clock`` reading in
        ``"wall"`` mode (defaults to the current one).  Background
        threads without access to event time use :meth:`watchdog`
        instead.
        """
        limit = self.thresholds.max_silence_s
        with self._lock:
            last_t = self._last_beacon_t
            last_wall = self._last_beat_wall
        if self.clock == "wall":
            if limit is None or last_wall is None:
                return None
            gap = (self._wall_clock() if now is None else now) - last_wall
        else:
            if limit is None or last_t is None:
                return None
            if now is None:
                raise ValueError(
                    "an event-clock HealthMonitor needs an explicit "
                    "event-time 'now' for check(); wall-clock callers "
                    "(snapshotter ticks) should use watchdog()"
                )
            gap = now - last_t
        self._g_silence.set(gap)
        if gap > limit:
            return self._alert(
                "silence",
                f"detector quiet for {gap:.1f}s (limit {limit:.1f}s)",
                t=now if now is not None else (last_t or 0.0),
                value=gap,
                threshold=limit,
            )
        return None

    def watchdog(self) -> Optional[Alert]:
        """Wall-clock staleness tick from a background thread.

        The :class:`~repro.obs.telemetry.Snapshotter` calls this every
        tick.  It measures the wall time since the last :meth:`beat`
        regardless of clock source: a snapshotter thread has no event
        clock, so "the feeding loop stalled" can only mean wall
        silence.  In ``"event"`` mode this is deliberately *not* the
        same signal as :meth:`check` — a replay running faster than
        real time keeps beating in wall time and never misfires here,
        while the old behaviour of comparing a wall ``now`` against
        event-time beats made the gap depend on the replay speed and
        the trace's epoch (the clock-source confusion this parameter
        exists to fix).
        """
        limit = self.thresholds.max_silence_s
        with self._lock:
            last_t = self._last_beacon_t
            last_wall = self._last_beat_wall
        if limit is None or last_wall is None:
            return None
        gap = self._wall_clock() - last_wall
        self._g_feed_silence.set(gap)
        if gap > limit:
            return self._alert(
                "silence",
                f"no beacons fed for {gap:.1f}s of wall time "
                f"(limit {limit:.1f}s)",
                t=last_t if last_t is not None else 0.0,
                value=gap,
                threshold=limit,
            )
        return None

    def on_report(self, report: "Any", latency_ms: float) -> None:
        """Fold one detection period into the sliding windows.

        Args:
            report: The :class:`~repro.core.detector.DetectionReport`.
            latency_ms: Wall-clock cost of producing it.
        """
        t = float(report.timestamp)
        n_pairs = len(report.raw_distances)
        flag_rate = len(report.sybil_pairs) / n_pairs if n_pairs else 0.0
        epsilon = get_near_miss_epsilon()
        margins = getattr(report, "margins", None) or {}
        fragile_rate = (
            sum(1 for m in margins.values() if abs(m) < epsilon) / n_pairs
            if n_pairs and margins
            else 0.0
        )
        with self._lock:
            self._reports += 1
            self._latencies.append(latency_ms)
            self._flag_rates.append(flag_rate)
            self._fragile_rates.append(fragile_rate)
            densities = sorted(self._densities)
            self._densities.append(float(report.density))
        self._g_latency.set(latency_ms)
        self._g_flag_rate.set(flag_rate)
        self._g_fragile.set(fragile_rate)

        th = self.thresholds
        if th.max_detect_ms is not None and latency_ms > th.max_detect_ms:
            self._alert(
                "detect_latency",
                f"detection took {latency_ms:.1f}ms "
                f"(limit {th.max_detect_ms:.1f}ms)",
                t=t,
                value=latency_ms,
                threshold=th.max_detect_ms,
            )
        if (
            th.max_flagged_pair_rate is not None
            and flag_rate > th.max_flagged_pair_rate
        ):
            self._alert(
                "flagged_pair_rate",
                f"{flag_rate:.0%} of pairs flagged "
                f"(limit {th.max_flagged_pair_rate:.0%})",
                t=t,
                value=flag_rate,
                threshold=th.max_flagged_pair_rate,
            )
        if (
            th.max_fragile_verdict_rate is not None
            and fragile_rate > th.max_fragile_verdict_rate
        ):
            self._alert(
                "fragile_verdict_rate",
                f"{fragile_rate:.0%} of verdicts within ±{epsilon:g} of "
                f"the threshold (limit {th.max_fragile_verdict_rate:.0%})",
                t=t,
                value=fragile_rate,
                threshold=th.max_fragile_verdict_rate,
            )
        # Drift against the median of the *previous* periods, so one
        # bad estimate cannot hide by dragging the reference with it.
        if densities:
            median = densities[len(densities) // 2]
            drift = abs(float(report.density) - median) / max(median, 1e-9)
            self._g_density_drift.set(drift)
            if (
                th.max_density_drift is not None
                and drift > th.max_density_drift
            ):
                self._alert(
                    "density_drift",
                    f"density {report.density:.1f}/km drifted "
                    f"{drift:.0%} from the window median {median:.1f}/km",
                    t=t,
                    value=drift,
                    threshold=th.max_density_drift,
                )
        if self._recorder is not None:
            self._recorder.record_report(report)

    # -- alerting ------------------------------------------------------
    def notify(
        self, kind: str, message: str, t: float, value: float, threshold: float
    ) -> Alert:
        """Fire an alert produced by an external watcher.

        The drift/SLO engine (:class:`repro.obs.drift.DriftMonitor`)
        routes its ``metric_drift`` / ``slo_burn`` breaches through
        here so they get the same treatment as native health alerts:
        the structured WARNING line, the ``health.alerts`` counter,
        the ring for ``/health``, and every registered hook (including
        the flight recorder's post-mortem dump).
        """
        return self._alert(
            kind, message, t=t, value=value, threshold=threshold
        )

    def _alert(
        self, kind: str, message: str, t: float, value: float, threshold: float
    ) -> Alert:
        alert = Alert(
            kind=kind, message=message, t=t, value=value, threshold=threshold
        )
        self._n_alerts += 1
        self.recent_alerts.append(alert)
        self._c_alerts.inc()
        _log.warning(
            "health alert",
            extra={
                "kind": kind,
                "t": t,
                "value": value,
                "threshold": threshold,
                "detail": message,
            },
        )
        for hook in self._hooks:
            hook(alert)
        return alert

    @property
    def alerts_total(self) -> int:
        """Alerts fired since construction."""
        return self._n_alerts

    def status(self) -> Dict[str, Any]:
        """Liveness/health document for the ``/health`` endpoint."""
        with self._lock:
            latencies = list(self._latencies)
            flag_rates = list(self._flag_rates)
            densities = list(self._densities)
            fragile_rates = list(self._fragile_rates)
            last = self._last_beacon_t
            reports = self._reports
        alerts = list(self.recent_alerts)
        return {
            "status": "alert" if alerts else "ok",
            "clock": self.clock,
            "reports": reports,
            "last_beacon_t": last,
            "window": {
                "detect_latency_ms": latencies,
                "flagged_pair_rate": flag_rates,
                "density_vhls_per_km": densities,
                "fragile_verdict_rate": fragile_rates,
            },
            "alerts": [a.to_record() for a in alerts],
        }

    @property
    def healthy(self) -> bool:
        """True while no alert has fired."""
        return not self.recent_alerts


#: Process-global monitor the pipeline picks up when none is injected
#: (None by default: the zero-overhead path is a single None check).
_DEFAULT: Optional[HealthMonitor] = None


def default_monitor() -> Optional[HealthMonitor]:
    """The process-global health monitor, if one is installed."""
    return _DEFAULT


def set_default_monitor(
    monitor: Optional[HealthMonitor],
) -> Optional[HealthMonitor]:
    """Install (or clear, with None) the process-global monitor.

    Returns:
        The previously installed monitor, for restoration.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = monitor
    return previous
