"""Forensic rendering of lineage traces — the ``repro trace`` command.

Given a trace dump written by ``repro serve --lineage-out`` (see
:mod:`repro.obs.lineage`), this module answers the operator's
questions about the beacon→verdict tail with evidence:

* which retained paths were slowest / flagged / near-misses
  (``--slowest`` / ``--flagged`` / ``--near-misses``),
* where one verdict's time went, as a stage waterfall with the
  stage-sum cross-check against its recorded ingest-to-verdict
  latency (``--follow <correlation-id>``),
* whether each flagged trace joins to its decision-provenance audit
  bundle on the shared correlation id (``--audit`` — the join fails
  loudly, so CI can assert trace ↔ audit integrity with one command),
* and a Chrome-tracing / Perfetto export of the selection
  (``--export``).

Everything renders to plain text — the CLI prints the returned string.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .lineage import (
    SUB_STAGES,
    TOP_STAGES,
    export_chrome_trace,
    load_lineage,
)

__all__ = [
    "load_header",
    "render_waterfall",
    "run_trace",
    "select_traces",
]

#: Most traces listed in one invocation (the dump keeps the full ring).
MAX_LISTED = 20

#: Width of the per-stage duration bars in a waterfall.
_BAR_WIDTH = 28


def load_header(path: str) -> Dict[str, Any]:
    """The dump's header record (counters, sample rate, capacity).

    Raises:
        ValueError: Empty file or a non-lineage first record.
    """
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            header = json.loads(line)
            if header.get("type") != "lineage":
                raise ValueError(
                    f"{path}: not a lineage dump (first record type "
                    f"{header.get('type')!r}; want 'lineage')"
                )
            return header
    raise ValueError(f"{path} is empty")


def select_traces(
    records: List[Dict[str, Any]],
    slowest: Optional[int] = None,
    flagged: bool = False,
    near_misses: Optional[int] = None,
) -> Tuple[List[Dict[str, Any]], str]:
    """Apply the CLI's selectors; returns (selection, label).

    Selectors compose: ``--flagged --slowest 5`` is the five slowest
    flagged traces.  Without any selector the whole ring is returned
    in retention order (oldest first).
    """
    selected = list(records)
    label = "retained"
    if flagged:
        selected = [r for r in selected if r.get("flagged")]
        label = "flagged"
    if near_misses is not None:
        selected = [r for r in selected if r.get("near_miss")]
        selected.sort(
            key=lambda r: r.get("latency_ms") or 0.0, reverse=True
        )
        selected = selected[:near_misses]
        label = f"near-miss {label}" if flagged else "near-miss"
    if slowest is not None:
        selected = sorted(
            selected, key=lambda r: r.get("latency_ms") or 0.0, reverse=True
        )[:slowest]
        label = f"slowest {label}"
    return selected, label


def _bar(value: float, scale: float) -> str:
    if scale <= 0.0:
        return ""
    filled = int(round(_BAR_WIDTH * value / scale))
    return "█" * min(filled, _BAR_WIDTH) if filled > 0 else "▏"


def _trace_line(record: Dict[str, Any]) -> str:
    stages = record.get("stages", {})
    cuts = "  ".join(
        f"{stage.split('_')[-1]}={stages[stage]:.3f}"
        for stage in ("ingest_enqueue", "queue_wait", "detect")
        if stage in stages
    )
    return (
        f"  {record.get('correlation_id', '?'):<18}"
        f" {str(record.get('observer', '?')):<10}"
        f" {record.get('reason', '?'):<13}"
        f" {record.get('latency_ms') or 0.0:>10.3f}ms"
        f"  {cuts}"
    )


def _audit_join_section(
    record: Dict[str, Any], bundle: Dict[str, Any], audit_path: str
) -> List[str]:
    lines = [
        f"  audit join -> {audit_path}: observer={bundle.get('observer')}"
        f" period={bundle.get('period')}"
        f" threshold={bundle.get('threshold'):.6g}"
        f" ({bundle.get('threshold_on')})",
    ]
    pairs = [p for p in bundle.get("pairs", []) if p.get("flagged")]
    shown = pairs if pairs else sorted(
        bundle.get("pairs", []),
        key=lambda p: abs(p.get("margin") or float("inf")),
    )[:1]
    kind = "flagged pair" if pairs else "closest pair"
    for pair in shown:
        margin = pair.get("margin")
        lines.append(
            f"    {kind} {pair['a']},{pair['b']}:"
            f" judged={pair.get('judged_distance'):.6g}"
            f" margin={margin if margin is None else format(margin, '.6g')}"
            f" provenance={pair.get('provenance')}"
        )
        lines.append(
            f"      (full evidence: repro explain {audit_path}"
            f" --pair {pair['a']},{pair['b']})"
        )
    return lines


def render_waterfall(
    record: Dict[str, Any],
    bundle: Optional[Dict[str, Any]] = None,
    audit_path: Optional[str] = None,
) -> str:
    """One trace as a stage waterfall, sub-stages indented under
    ``detect``, with the stage-sum cross-check footer."""
    stages = record.get("stages", {})
    latency = record.get("latency_ms") or 0.0
    scale = max([latency] + [v for v in stages.values()])
    lines = [
        f"trace {record.get('correlation_id', '?')} —"
        f" observer={record.get('observer')}"
        f" seq={record.get('seq')}"
        f" shard={record.get('shard')}"
        f" reason={record.get('reason')}",
        f"  flagged={record.get('flagged')}"
        f" near_miss={record.get('near_miss')}"
        f" sybil_ids={','.join(record.get('sybil_ids') or []) or '-'}"
        f" t={record.get('t')}",
    ]
    for stage in TOP_STAGES:
        if stage not in stages:
            continue
        lines.append(
            f"  {stage:<21} {stages[stage]:>10.3f}ms"
            f"  {_bar(stages[stage], scale)}"
        )
        if stage == "detect":
            for sub in SUB_STAGES:
                if sub in stages:
                    lines.append(
                        f"    {sub:<19} {stages[sub]:>10.3f}ms"
                        f"  {_bar(stages[sub], scale)}"
                    )
    cut_sum = sum(
        stages.get(stage, 0.0)
        for stage in ("ingest_enqueue", "queue_wait", "detect")
    )
    lines.append(
        f"  {'ingest-to-verdict':<21} {latency:>10.3f}ms"
        f"  (enqueue+wait+detect = {cut_sum:.3f}ms,"
        f" Δ {latency - cut_sum:+.3f}ms)"
    )
    if bundle is not None and audit_path is not None:
        lines.extend(_audit_join_section(record, bundle, audit_path))
    elif audit_path is not None:
        lines.append(
            f"  audit join -> {audit_path}: NO bundle carries this"
            " correlation id"
        )
    return "\n".join(lines)


def run_trace(
    dump_path: str,
    slowest: Optional[int] = None,
    flagged: bool = False,
    near_misses: Optional[int] = None,
    follow: Optional[str] = None,
    export: Optional[str] = None,
    audit_path: Optional[str] = None,
) -> str:
    """The ``repro trace`` entry point; returns the rendered text.

    Raises:
        ValueError: Bad query or unreadable/malformed dump.
        RuntimeError: ``audit_path`` was given and a flagged trace in
            the selection does not join to any audit bundle.
    """
    header = load_header(dump_path)
    records = load_lineage(dump_path)
    by_cid: Dict[str, Dict[str, Any]] = {}
    if audit_path is not None:
        from .audit import load_audit_log

        for bundle in load_audit_log(audit_path):
            cid = bundle.get("correlation_id")
            if cid is not None:
                by_cid[cid] = bundle

    if follow is not None:
        matches = [
            r for r in records if r.get("correlation_id") == follow
        ]
        if not matches:
            raise ValueError(
                f"correlation id {follow!r} not among the "
                f"{len(records)} retained trace(s) in {dump_path}"
            )
        sections = [
            render_waterfall(record, by_cid.get(follow), audit_path)
            for record in matches
        ]
        if export is not None:
            n_events = export_chrome_trace(matches, export)
            sections.append(f"[{n_events} event(s) -> {export}]")
        return "\n\n".join(sections)

    selected, label = select_traces(
        records, slowest=slowest, flagged=flagged, near_misses=near_misses
    )
    lines = [
        f"lineage {dump_path}: minted={header.get('minted')}"
        f" completed={header.get('completed')}"
        f" retained={header.get('retained')}"
        f" (lifetime {header.get('retained_total')})"
        f" sheds={header.get('sheds')}"
        f" sample={header.get('sample')}",
    ]
    reasons: Dict[str, int] = {}
    for record in records:
        reason = record.get("reason", "?")
        reasons[reason] = reasons.get(reason, 0) + 1
    if reasons:
        lines.append(
            "retention: "
            + "  ".join(
                f"{reason}={count}"
                for reason, count in sorted(reasons.items())
            )
        )
    lines.append(f"{label}: {len(selected)} trace(s)")
    for record in selected[:MAX_LISTED]:
        lines.append(_trace_line(record))
    if len(selected) > MAX_LISTED:
        lines.append(
            f"  ... {len(selected) - MAX_LISTED} more (narrow with"
            " --slowest/--flagged/--near-misses, or --follow one)"
        )
    if export is not None:
        n_events = export_chrome_trace(selected, export)
        lines.append(
            f"[{n_events} event(s) from {len(selected)} trace(s) ->"
            f" {export}]"
        )
    if audit_path is not None:
        flagged_selection = [r for r in selected if r.get("flagged")]
        missing = [
            r.get("correlation_id")
            for r in flagged_selection
            if r.get("correlation_id") not in by_cid
        ]
        lines.append(
            f"audit join: {len(flagged_selection) - len(missing)}/"
            f"{len(flagged_selection)} flagged trace(s) resolve to an"
            f" audit bundle in {audit_path}"
        )
        if missing:
            raise RuntimeError(
                "\n".join(lines)
                + f"\naudit join FAILED: {len(missing)} flagged trace(s)"
                f" carry no matching bundle: "
                + ", ".join(str(cid) for cid in missing[:5])
            )
    return "\n".join(lines)
