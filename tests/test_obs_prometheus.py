"""Tests for repro.obs.prometheus — text exposition rendering."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    CONTENT_TYPE,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)


class TestSanitizeMetricName:
    def test_dots_become_underscores(self):
        assert (
            sanitize_metric_name("detector.pairs_compared")
            == "detector_pairs_compared"
        )

    def test_illegal_characters_replaced(self):
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("99problems") == "_99problems"

    def test_colons_and_underscores_kept(self):
        assert sanitize_metric_name("ns:metric_x") == "ns:metric_x"

    def test_empty_name(self):
        assert sanitize_metric_name("") == "_"


class TestRenderPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_counter_rendering(self):
        registry = MetricsRegistry()
        registry.counter("detector.pairs_compared").inc(7)
        text = render_prometheus(registry)
        assert "# TYPE repro_detector_pairs_compared_total counter" in text
        assert "repro_detector_pairs_compared_total 7.0" in text

    def test_gauge_rendering_and_unset_gauge_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("pipeline.density_vhls_per_km").set(42.5)
        registry.gauge("never.set")  # created but never written
        text = render_prometheus(registry)
        assert "repro_pipeline_density_vhls_per_km 42.5" in text
        assert "never_set" not in text

    def test_histogram_rendered_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("detector.detect_ms")
        for v in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(v)
        text = render_prometheus(registry)
        assert "# TYPE repro_detector_detect_ms summary" in text
        assert 'repro_detector_detect_ms{quantile="0.5"} 2.0' in text
        assert 'repro_detector_detect_ms{quantile="0.95"} 4.0' in text
        assert 'repro_detector_detect_ms{quantile="0.99"} 4.0' in text
        assert "repro_detector_detect_ms_sum 10.0" in text
        assert "repro_detector_detect_ms_count 4.0" in text

    def test_empty_histogram_renders_count_zero_without_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        text = render_prometheus(registry)
        assert "repro_h_count 0.0" in text
        assert "quantile" not in text

    def test_custom_and_empty_namespace(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "vanet_c_total 1.0" in render_prometheus(
            registry, namespace="vanet"
        )
        assert render_prometheus(registry, namespace="").startswith(
            "# TYPE c_total counter"
        )

    def test_output_is_newline_terminated(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert render_prometheus(registry).endswith("\n")

    def test_content_type_names_the_text_format(self):
        assert "version=0.0.4" in CONTENT_TYPE

class TestEscapeLabelValue:
    def test_plain_values_pass_through(self):
        assert escape_label_value("v000") == "v000"
        assert escape_label_value("UTF-8 ok: µ±σ") == "UTF-8 ok: µ±σ"

    def test_reserved_characters_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("line1\nline2") == "line1\\nline2"

    def test_backslash_escaped_before_quote(self):
        # The order matters: escaping quotes first would double-escape
        # the backslashes that escape introduces.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_non_string_values_coerced(self):
        assert escape_label_value(42) == "42"

    def test_escaped_value_is_exposition_safe(self):
        # The escaped form must contain no raw quote/newline, so it can
        # be embedded in label="..." without breaking the line format.
        escaped = escape_label_value('bad " value\nwith\\stuff')
        assert "\n" not in escaped
        import re
        assert not re.search(r'(?<!\\)"', escaped)
