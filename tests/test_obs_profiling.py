"""Tests for ``repro.obs.profiling`` — the phase-attributed profiler.

Covers the off-by-default guarantees (no thread, tracemalloc off), span
attribution, idle filtering, collapsed-stack output, snapshot/merge
(the cross-worker folding contract), memory attribution, the indexed
output-path scheme, and the default-profiler lifecycle the CLI and the
parallel executor drive.
"""

import os
import threading
import time
import tracemalloc

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    DEFAULT_HZ,
    PHASES,
    SamplingProfiler,
    default_profiler,
    indexed_path,
    phase_for_span,
    restart_in_child,
    start_default,
    stop_default,
)
from repro.obs.trace import Tracer, default_tracer


def busy_wait(seconds: float) -> int:
    count = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        count += 1
    return count


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


@pytest.fixture(autouse=True)
def _no_leaked_default():
    yield
    stop_default()
    default_tracer().disable()


class TestPhaseMap:
    def test_detector_spans_map_to_paper_phases(self):
        assert phase_for_span("normalise") == "normalize"
        assert phase_for_span("pairwise_dtw") == "compare"
        assert phase_for_span("minmax") == "compare"
        assert phase_for_span("detection") == "compare"
        assert phase_for_span("threshold") == "confirm"
        assert phase_for_span("confirmation") == "confirm"
        assert phase_for_span("collect") == "collect"
        assert phase_for_span("sim") == "sim"
        assert phase_for_span("eval") == "eval"

    def test_dotted_names_inherit_their_family(self):
        assert phase_for_span("sim.highway") == "sim"
        assert phase_for_span("eval.fig11") == "eval"

    def test_unknown_names_are_unmapped(self):
        assert phase_for_span("nonsense") is None
        assert phase_for_span("") is None

    def test_every_mapped_phase_is_a_known_phase(self):
        for name in ("normalise", "detection", "threshold", "sim", "eval"):
            assert phase_for_span(name) in PHASES


class TestOffByDefault:
    def test_constructing_starts_nothing(self):
        before = threading.active_count()
        profiler = SamplingProfiler(tracer=Tracer(enabled=True))
        assert not profiler.running
        assert threading.active_count() == before
        assert not tracemalloc.is_tracing()

    def test_no_default_profiler_until_started(self):
        assert default_profiler() is None

    def test_memory_off_keeps_tracemalloc_off(self, tracer):
        profiler = SamplingProfiler(tracer=tracer).start()
        try:
            assert not tracemalloc.is_tracing()
        finally:
            profiler.stop()

    def test_bad_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-1.0)


class TestSampling:
    def test_thread_starts_and_stops(self, tracer):
        profiler = SamplingProfiler(hz=200.0, tracer=tracer).start()
        assert profiler.running
        names = [t.name for t in threading.enumerate()]
        assert "repro-profiler" in names
        profiler.stop()
        assert not profiler.running
        assert "repro-profiler" not in [t.name for t in threading.enumerate()]

    def test_samples_attribute_to_the_open_span(self, tracer):
        profiler = SamplingProfiler(hz=400.0, tracer=tracer).start()
        try:
            with tracer.span("detection"):
                busy_wait(0.25)
        finally:
            profiler.stop()
        assert profiler.samples_total > 0
        breakdown = profiler.phase_breakdown()
        assert breakdown.get("compare", 0) > 0
        # The busy loop runs entirely inside the span; nearly all busy
        # samples must land on its phase (the ISSUE's >=90% criterion).
        assert profiler.attributed_ratio >= 0.9

    def test_innermost_span_wins(self, tracer):
        profiler = SamplingProfiler(tracer=tracer)
        with tracer.span("eval"):
            with tracer.span("detection"):
                profiler.sample_once()
        assert profiler.phase_breakdown().get("compare", 0) >= 1
        assert profiler.phase_breakdown().get("eval", 0) == 0

    def test_unmapped_span_falls_back_to_outer_phase(self, tracer):
        profiler = SamplingProfiler(tracer=tracer)
        with tracer.span("eval"):
            with tracer.span("something_custom"):
                profiler.sample_once()
        assert profiler.phase_breakdown().get("eval", 0) >= 1

    def test_spanless_threads_bucket_as_other(self, tracer):
        profiler = SamplingProfiler(tracer=tracer)
        profiler.sample_once()
        assert set(profiler.phase_breakdown()) <= {"other"}

    def test_idle_threads_are_excluded(self, tracer):
        release = threading.Event()
        parked = threading.Thread(target=release.wait, daemon=True)
        parked.start()
        time.sleep(0.05)
        profiler = SamplingProfiler(tracer=tracer)
        try:
            profiler.sample_once()
        finally:
            release.set()
            parked.join()
        # The parked thread waits in threading.py:wait -> idle bucket.
        assert profiler.idle_samples >= 1

    def test_disabled_tracer_yields_no_attribution(self):
        tracer = Tracer(enabled=False)
        profiler = SamplingProfiler(tracer=tracer)
        profiler.sample_once()
        assert profiler.attributed_samples == 0


class TestCollapsedOutput:
    def test_collapsed_file_format(self, tracer, tmp_path):
        profiler = SamplingProfiler(tracer=tracer)
        with tracer.span("detection"):
            profiler.sample_once()
        out = tmp_path / "profile.collapsed"
        n = profiler.write_collapsed(str(out))
        lines = out.read_text().splitlines()
        assert len(lines) == n > 0
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) >= 1
            frames = stack.split(";")
            assert frames[0] in PHASES or frames[0] == "other"
            # Frames are path:function with no separator collisions.
            for frame in frames[1:]:
                assert " " not in frame

    def test_hotspots_rank_by_self_samples(self, tracer):
        profiler = SamplingProfiler(hz=400.0, tracer=tracer).start()
        try:
            with tracer.span("detection"):
                busy_wait(0.25)
        finally:
            profiler.stop()
        hotspots = profiler.hotspots(top=5)
        assert hotspots
        selfs = [h["self"] for h in hotspots]
        assert selfs == sorted(selfs, reverse=True)
        assert "busy_wait" in hotspots[0]["function"]
        assert hotspots[0]["phase"] == "compare"

    def test_tables_render(self, tracer):
        profiler = SamplingProfiler(tracer=tracer)
        with tracer.span("detection"):
            profiler.sample_once()
        assert "profile phases" in profiler.phase_table()
        assert "profile hotspots" in profiler.hotspot_table(5)


class TestSnapshotMerge:
    def make_profile(self, tracer):
        profiler = SamplingProfiler(tracer=tracer)
        with tracer.span("detection"):
            profiler.sample_once()
            profiler.sample_once()
        return profiler

    def test_snapshot_is_json_serialisable(self, tracer):
        import json

        snapshot = self.make_profile(tracer).snapshot()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["samples"] == snapshot["samples"] == 2

    def test_merge_sums_sample_counts(self, tracer):
        a = self.make_profile(tracer)
        b = self.make_profile(tracer)
        snap_b = b.snapshot()
        total_before = a.samples_total
        a.merge(snap_b)
        assert a.samples_total == total_before + b.samples_total
        assert a.phase_breakdown()["compare"] == 4

    def test_merge_into_empty_reproduces_counts(self, tracer):
        source = self.make_profile(tracer)
        target = SamplingProfiler(tracer=tracer)
        target.merge(source.snapshot())
        assert target.samples_total == source.samples_total
        assert target.phase_breakdown() == source.phase_breakdown()
        assert target.snapshot()["stacks"] == source.snapshot()["stacks"]

    def test_merge_rejects_unknown_version(self, tracer):
        profiler = SamplingProfiler(tracer=tracer)
        with pytest.raises(ValueError, match="version"):
            profiler.merge({"version": 999})


class TestMemoryAttribution:
    def test_memory_phases_record_net_and_peak(self, tracer):
        profiler = SamplingProfiler(tracer=tracer, memory=True).start()
        try:
            assert tracemalloc.is_tracing()
            keep = []
            with tracer.span("detection"):
                keep.append(bytearray(4 * 1024 * 1024))
            with tracer.span("detection"):
                transient = bytearray(8 * 1024 * 1024)
                del transient
        finally:
            profiler.stop()
        assert not tracemalloc.is_tracing()
        memory = profiler.memory_breakdown()
        stats = memory["compare"]
        assert stats["spans"] == 2
        assert stats["net_bytes"] >= 3 * 1024 * 1024  # the kept buffer
        assert stats["peak_bytes"] >= 7 * 1024 * 1024  # the transient one
        del keep

    def test_memory_merge_adds_net_and_maxes_peak(self, tracer):
        snapshot = {
            "version": 1,
            "samples": 0,
            "idle_samples": 0,
            "attributed_samples": 0,
            "phases": {},
            "stacks": [],
            "memory": {
                "compare": {"net_bytes": 100, "peak_bytes": 500, "spans": 1}
            },
        }
        profiler = SamplingProfiler(tracer=tracer, memory=True).start()
        try:
            profiler.merge(snapshot)
            profiler.merge(snapshot)
        finally:
            profiler.stop()
        stats = profiler.memory_breakdown()["compare"]
        assert stats["net_bytes"] == 200
        assert stats["peak_bytes"] == 500
        assert stats["spans"] == 2

    def test_stop_detaches_the_span_listener(self, tracer):
        profiler = SamplingProfiler(tracer=tracer, memory=True).start()
        profiler.stop()
        before = profiler.memory_breakdown()
        with tracer.span("detection"):
            pass
        assert profiler.memory_breakdown() == before

    def test_preexisting_tracemalloc_is_left_running(self, tracer):
        tracemalloc.start()
        try:
            profiler = SamplingProfiler(tracer=tracer, memory=True).start()
            profiler.stop()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestGauges:
    def test_publish_gauges_writes_the_profile_family(self, tracer):
        registry = MetricsRegistry(enabled=True)
        profiler = SamplingProfiler(tracer=tracer, registry=registry)
        with tracer.span("detection"):
            profiler.sample_once()
        profiler.publish_gauges()
        assert registry.gauge("pipeline.profile.samples").value == 1
        assert registry.gauge("pipeline.profile.attributed_ratio").value == 1.0
        assert (
            registry.gauge("pipeline.profile.phase_ratio.compare").value == 1.0
        )


class TestIndexedPath:
    def test_free_base_is_used_directly(self, tmp_path):
        base = tmp_path / "profile.collapsed"
        assert indexed_path(str(base)) == str(base)

    def test_existing_base_indexes_like_the_flight_recorder(self, tmp_path):
        base = tmp_path / "profile.collapsed"
        base.write_text("x")
        assert indexed_path(str(base)) == f"{base}.1"
        (tmp_path / "profile.collapsed.1").write_text("x")
        (tmp_path / "profile.collapsed.2").write_text("x")
        assert indexed_path(str(base)) == f"{base}.3"


class TestDefaultLifecycle:
    def test_start_default_enables_tracer_and_is_idempotent(self):
        tracer = default_tracer()
        assert not tracer.enabled
        first = start_default(hz=200.0)
        try:
            assert tracer.enabled
            assert tracer.exporter is None  # attribution only, no export
            assert default_profiler() is first
            assert start_default(hz=50.0) is first  # second call: same one
            assert first.hz == 200.0
        finally:
            assert stop_default() is first
        assert default_profiler() is None
        assert not first.running

    def test_stop_default_without_start_is_a_noop(self):
        assert stop_default() is None

    def test_restart_in_child_without_profiling_is_a_noop(self):
        assert restart_in_child() is None

    def test_restart_in_child_swaps_in_a_fresh_profiler(self):
        parent = start_default(hz=123.0)
        try:
            child = restart_in_child()
            assert child is not parent
            assert child is default_profiler()
            assert child.hz == 123.0
            assert child.running
            assert child.samples_total == 0
        finally:
            stop_default()
            parent.stop()


class TestWorkerProfileMerge:
    """Serial vs parallel profiles: worker samples all come home."""

    def test_parallel_run_merges_worker_profiles(self, tmp_path):
        from repro.core.thresholds import ConstantThreshold
        from repro.eval.runner import run_voiceprint
        from repro.sim.scenario import ScenarioConfig
        from repro.sim.simulator import HighwaySimulator

        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("profile merge requires the fork start method")
        os.environ.pop("REPRO_EVAL_WORKERS", None)
        result = HighwaySimulator(
            ScenarioConfig(sim_time_s=20.0, density_vhls_per_km=15.0),
            recorded_nodes=4,
        ).run()
        parent = start_default(hz=400.0)
        try:
            outcomes = run_voiceprint(
                result, ConstantThreshold(0.05), workers=2
            )
        finally:
            stop_default()
        assert outcomes
        # Worker CPU (the replay loop) is invisible to the parent's own
        # sampler; seeing compare/eval samples proves worker snapshots
        # were shipped back and merged rather than silently dropped.
        breakdown = parent.phase_breakdown()
        assert breakdown.get("compare", 0) + breakdown.get("eval", 0) > 0
        assert parent.samples_total > 0
