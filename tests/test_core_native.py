"""Tests for the early-abandon DTW kernel and its native C backend.

``repro.core.native`` compiles a scalar anti-diagonal kernel at runtime
and ``dtw_banded_batch_abandon`` dispatches to it when available.  The
contract under test is *bit-identity*: completed distances, path
lengths, abandon evidence and relaxed-cell counts must match the numpy
kernel (and, for completed pairs, :func:`dtw_banded_batch` /
:func:`dtw_banded_fast`) exactly, so the dispatch is invisible to every
caller.  Native-specific tests skip cleanly on machines without a C
toolchain; the numpy-path tests run everywhere.
"""

import math

import numpy as np
import pytest

from repro.core import native
from repro.core import pairwise
from repro.core.fastdtw import dtw_banded_fast
from repro.core.pairwise import dtw_banded_batch, dtw_banded_batch_abandon

_INF = math.inf

needs_native = pytest.mark.skipif(
    not native.native_available(), reason="no C toolchain on this machine"
)


def _batch(seed, count=8, n=120, m=120, sybil=3):
    """Random series batch with a few near-duplicate (cheap) pairs."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=max(n, m))
    xs, ys = [], []
    for index in range(count):
        if index < sybil:
            xs.append(base[:n] + rng.normal(scale=0.05, size=n))
            ys.append(base[:m] + rng.normal(scale=0.05, size=m))
        else:
            xs.append(rng.normal(size=n))
            ys.append(rng.normal(size=m))
    return xs, ys


def _force_numpy(monkeypatch):
    """Route dtw_banded_batch_abandon through the numpy fallback."""
    monkeypatch.setattr(pairwise, "abandon_batch_native", lambda *args: None)


class TestGating:
    def test_env_var_disables_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        monkeypatch.setattr(native, "_lib", native._UNSET)
        assert not native.native_available()
        assert not native.warmup()
        assert (
            native.abandon_batch_native(
                np.ones((1, 5)),
                np.ones((1, 5)),
                np.arange(1, 6, dtype=np.int64),
                np.arange(1, 6, dtype=np.int64),
                np.asarray([_INF]),
                8,
            )
            is None
        )

    def test_warmup_reports_availability(self):
        assert native.warmup() == native.native_available()

    def test_source_tag_is_stable(self):
        assert native._source_tag() == native._source_tag()
        assert len(native._source_tag()) == 16

    @needs_native
    def test_geometry_guard_rejects_non_monotone_bands(self):
        # i0s stepping *down* breaks the margin-refill precondition of
        # the C loop; the wrapper must decline rather than answer.
        n = m = 6
        i0s = np.array([1, 2, 1, 2, 3, 4, 5, 5, 6, 6, 6], dtype=np.int64)
        i1s = np.array([1, 2, 3, 4, 5, 6, 6, 6, 6, 6, 6], dtype=np.int64)
        got = native.abandon_batch_native(
            np.ones((1, n)), np.ones((1, m)), i0s, i1s, np.asarray([_INF]), 8
        )
        assert got is None

    @needs_native
    def test_geometry_guard_rejects_wide_i1_steps(self):
        n = m = 6
        i0s = np.ones(11, dtype=np.int64)
        i1s = np.array([1, 3, 4, 5, 6, 6, 6, 6, 6, 6, 6], dtype=np.int64)
        got = native.abandon_batch_native(
            np.ones((1, n)), np.ones((1, m)), i0s, i1s, np.asarray([_INF]), 8
        )
        assert got is None


class TestAbandonKernelNumpyPath:
    """Contract tests pinned to the numpy fallback (run everywhere)."""

    @pytest.mark.parametrize(
        "n,m,radius", [(120, 120, 10), (80, 100, 10), (40, 40, 3), (200, 200, 10)]
    )
    def test_infinite_thresholds_match_plain_batch(self, monkeypatch, n, m, radius):
        _force_numpy(monkeypatch)
        xs, ys = _batch(5, count=6, n=n, m=m)
        thresholds = np.full(len(xs), _INF)
        results, abandoned = dtw_banded_batch_abandon(xs, ys, radius, thresholds)
        assert abandoned == {}
        assert results == dtw_banded_batch(xs, ys, radius)

    def test_abandoned_evidence_is_a_true_lower_bound(self, monkeypatch):
        _force_numpy(monkeypatch)
        xs, ys = _batch(7, count=10, n=150, m=150)
        exact = [dtw_banded_fast(x, y, 10).distance for x, y in zip(xs, ys)]
        # A threshold between the cheap (sybil) and expensive pairs so
        # the batch genuinely splits.
        threshold = float(np.median(exact))
        thresholds = np.full(len(xs), threshold)
        results, abandoned = dtw_banded_batch_abandon(xs, ys, 10, thresholds)
        assert abandoned  # the scenario must actually abandon something
        total = pairwise.band_cells(150, 150, 10)
        for index, triple in enumerate(results):
            if triple is not None:
                ref = dtw_banded_fast(xs[index], ys[index], 10)
                assert triple == (ref.distance, len(ref.path), ref.cells)
                assert index not in abandoned
            else:
                evidence, cells_done = abandoned[index]
                # Proven lower bound, strictly above the threshold, and
                # never exceeding the pair's true distance.
                assert evidence > threshold
                assert evidence <= exact[index]
                assert 0 < cells_done < total

    def test_mixed_thresholds(self, monkeypatch):
        _force_numpy(monkeypatch)
        xs, ys = _batch(9, count=6, n=100, m=100)
        exact = [dtw_banded_fast(x, y, 10).distance for x, y in zip(xs, ys)]
        thresholds = np.asarray(
            [_INF if index % 2 else 0.5 * exact[index] for index in range(6)]
        )
        results, abandoned = dtw_banded_batch_abandon(xs, ys, 10, thresholds)
        for index in range(1, 6, 2):  # infinite thresholds never abandon
            assert results[index] is not None
        for index, (evidence, _cells) in abandoned.items():
            assert evidence > thresholds[index]

    def test_rejects_mismatched_batches(self):
        with pytest.raises(ValueError):
            dtw_banded_batch_abandon(
                [np.ones(5)], [np.ones(5)] * 2, 2, np.asarray([_INF])
            )
        with pytest.raises(ValueError):
            dtw_banded_batch_abandon(
                [np.ones(5)], [np.ones(5)], 2, np.asarray([_INF, _INF])
            )
        with pytest.raises(ValueError):
            dtw_banded_batch_abandon(
                [np.ones(5), np.ones(6)], [np.ones(5)] * 2, 2, np.full(2, _INF)
            )

    def test_degenerate_shapes_run_exact(self):
        xs = [np.asarray([1.0]), np.asarray([2.0])]
        ys = [np.asarray([1.5, 2.5]), np.asarray([0.0, 1.0])]
        results, abandoned = dtw_banded_batch_abandon(xs, ys, 2, np.full(2, 0.0))
        assert abandoned == {}
        for triple, x, y in zip(results, xs, ys):
            ref = dtw_banded_fast(x, y, 2)
            assert triple == (ref.distance, len(ref.path), ref.cells)

    def test_empty_batch(self):
        assert dtw_banded_batch_abandon([], [], 5, np.empty(0)) == ([], {})


@needs_native
class TestNativeBitIdentity:
    """The C backend must be indistinguishable from the numpy kernel."""

    @pytest.mark.parametrize(
        "n,m,radius", [(120, 120, 10), (80, 100, 10), (40, 40, 3), (199, 200, 10)]
    )
    def test_completed_pairs(self, monkeypatch, n, m, radius):
        xs, ys = _batch(11, count=6, n=n, m=m)
        thresholds = np.full(len(xs), _INF)
        got, got_dead = dtw_banded_batch_abandon(xs, ys, radius, thresholds)
        _force_numpy(monkeypatch)
        want, want_dead = dtw_banded_batch_abandon(xs, ys, radius, thresholds)
        assert got == want  # == on float triples: bit-identity
        assert got_dead == want_dead == {}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_abandoned_pairs(self, monkeypatch, seed):
        xs, ys = _batch(seed, count=12, n=150, m=150)
        exact = [dtw_banded_fast(x, y, 10).distance for x, y in zip(xs, ys)]
        thresholds = np.full(len(xs), float(np.median(exact)))
        got, got_dead = dtw_banded_batch_abandon(xs, ys, 10, thresholds)
        _force_numpy(monkeypatch)
        want, want_dead = dtw_banded_batch_abandon(xs, ys, 10, thresholds)
        assert got_dead  # the scenario must actually abandon something
        assert got == want
        # Same pairs die at the same checkpoint with the same evidence
        # and the same relaxed-cell count.
        assert got_dead == want_dead

    def test_single_pair_exact_run(self, monkeypatch):
        # The engine's run_exact path: a one-pair batch at an infinite
        # threshold must reproduce the scalar kernel bit for bit.
        rng = np.random.default_rng(17)
        x, y = rng.normal(size=200), rng.normal(size=200)
        (triple,), dead = dtw_banded_batch_abandon([x], [y], 10, np.asarray([_INF]))
        ref = dtw_banded_fast(x, y, 10)
        assert dead == {}
        assert triple == (ref.distance, len(ref.path), ref.cells)
