"""Unit tests for the evaluation metrics (Eqs. 10-13) and reporting."""

import pytest

from repro.eval.metrics import PeriodOutcome, average_rates, evaluate_flags
from repro.eval.reporting import format_value, render_table
from repro.sim.simulator import GroundTruth


TRUTH = GroundTruth(
    normal_ids=frozenset({"n1", "n2", "n3"}),
    malicious_ids=frozenset({"m1"}),
    sybil_to_attacker={"s1": "m1", "s2": "m1"},
)


class TestEvaluateFlags:
    def test_perfect_detection(self):
        outcome = evaluate_flags(
            "n1", 0, {"m1", "s1", "s2"}, {"n2", "n3", "m1", "s1", "s2"}, TRUTH
        )
        assert outcome.detection_rate == 1.0
        assert outcome.false_positive_rate == 0.0

    def test_eq10_partial_detection(self):
        outcome = evaluate_flags(
            "n1", 0, {"s1"}, {"n2", "m1", "s1", "s2"}, TRUTH
        )
        # 1 of 3 illegitimate neighbours detected.
        assert outcome.detection_rate == pytest.approx(1 / 3)

    def test_eq11_false_positives(self):
        outcome = evaluate_flags(
            "n1", 0, {"n2"}, {"n2", "n3", "m1"}, TRUTH
        )
        assert outcome.false_positive_rate == pytest.approx(1 / 2)

    def test_detector_excluded_from_populations(self):
        outcome = evaluate_flags("n1", 0, set(), {"n1", "n2"}, TRUTH)
        assert outcome.total_legitimate == 1  # only n2

    def test_flags_outside_heard_ignored(self):
        outcome = evaluate_flags("n1", 0, {"s1"}, {"n2"}, TRUTH)
        assert outcome.true_flagged == 0

    def test_no_illegitimate_heard_rate_undefined(self):
        outcome = evaluate_flags("n1", 0, set(), {"n2", "n3"}, TRUTH)
        assert outcome.detection_rate is None
        assert outcome.false_positive_rate == 0.0

    def test_no_legitimate_heard_fpr_undefined(self):
        outcome = evaluate_flags("n1", 0, set(), {"m1", "s1"}, TRUTH)
        assert outcome.false_positive_rate is None

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            PeriodOutcome("n1", 0, 5, 3, 0, 2)
        with pytest.raises(ValueError):
            PeriodOutcome("n1", 0, 0, 3, 4, 2)


class TestAverageRates:
    def test_eq12_eq13(self):
        outcomes = [
            PeriodOutcome("a", 0, 2, 2, 0, 4),  # DR 1.0, FPR 0
            PeriodOutcome("b", 0, 1, 2, 1, 4),  # DR 0.5, FPR 0.25
        ]
        dr, fpr = average_rates(outcomes)
        assert dr == pytest.approx(0.75)
        assert fpr == pytest.approx(0.125)

    def test_undefined_rates_excluded(self):
        outcomes = [
            PeriodOutcome("a", 0, 0, 0, 0, 4),  # DR undefined
            PeriodOutcome("b", 0, 2, 2, 0, 4),
        ]
        dr, fpr = average_rates(outcomes)
        assert dr == 1.0
        assert fpr == 0.0

    def test_all_undefined(self):
        outcomes = [PeriodOutcome("a", 0, 0, 0, 0, 0)]
        dr, fpr = average_rates(outcomes)
        assert dr is None
        assert fpr is None

    def test_empty(self):
        assert average_rates([]) == (None, None)


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(0.123456) == "0.1235"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        table = render_table(
            ["name", "value"],
            [("alpha", 1.0), ("b", 22.5)],
            title="demo",
        )
        lines = table.split("\n")
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_table_row_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [("only-one",)])

    def test_render_table_empty_rows(self):
        table = render_table(["a"], [])
        assert "a" in table
