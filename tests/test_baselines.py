"""Unit tests for the baseline detectors."""

import numpy as np
import pytest

from repro.baselines import METHOD_MATRIX
from repro.baselines.bouassida import BouassidaConfig, BouassidaDetector
from repro.baselines.chen import ChenConfig, ChenDetector
from repro.baselines.cpvsad import (
    CpvsadConfig,
    CpvsadDetector,
    IdentityClaim,
    WitnessReport,
)
from repro.baselines.demirbas import DemirbasConfig, DemirbasDetector
from repro.core.timeseries import RSSITimeSeries
from repro.radio.base import LinkBudget
from repro.radio.shadowing import LogNormalShadowingModel


class TestCpvsad:
    def _detector(self, sigma=3.9):
        return CpvsadDetector(
            assumed_budget=LinkBudget(tx_power_dbm=20.0),
            assumed_model=LogNormalShadowingModel(
                path_loss_exponent=2.0, sigma_db=sigma
            ),
            config=CpvsadConfig(sigma_db=sigma),
        )

    def _reports_for(self, detector, true_xy, observers, rng, power_offset=0.0):
        reports = []
        for index, obs_xy in enumerate(observers):
            d = np.hypot(true_xy[0] - obs_xy[0], true_xy[1] - obs_xy[1])
            rssi = detector.predicted_rssi(d) + power_offset + rng.normal(0, 2.0)
            reports.append(
                WitnessReport(f"w{index}", obs_xy, float(rssi), n_samples=50)
            )
        return reports

    def test_truthful_claim_passes(self):
        rng = np.random.default_rng(0)
        detector = self._detector()
        observers = [(0.0, 0.0), (300.0, 0.0), (600.0, 0.0), (150.0, 50.0)]
        true_xy = (200.0, 0.0)
        passes = 0
        for _ in range(30):
            reports = self._reports_for(detector, true_xy, observers, rng)
            claim = IdentityClaim("honest", true_xy)
            if not detector.is_sybil(claim, reports):
                passes += 1
        assert passes >= 25

    def test_spoofed_position_rejected(self):
        rng = np.random.default_rng(1)
        detector = self._detector()
        observers = [(0.0, 0.0), (300.0, 0.0), (600.0, 0.0), (150.0, 50.0)]
        true_xy = (200.0, 0.0)
        claimed_xy = (500.0, 0.0)  # 300 m position lie
        rejections = 0
        for _ in range(30):
            reports = self._reports_for(detector, true_xy, observers, rng)
            claim = IdentityClaim("sybil", claimed_xy)
            if detector.is_sybil(claim, reports):
                rejections += 1
        assert rejections >= 20

    def test_power_offset_invariance_within_legal_range(self):
        """A TX power inside the legal range must not trigger rejection."""
        rng = np.random.default_rng(2)
        detector = self._detector()
        observers = [(0.0, 0.0), (300.0, 0.0), (600.0, 0.0)]
        true_xy = (200.0, 0.0)
        rejections = 0
        for _ in range(30):
            reports = self._reports_for(
                detector, true_xy, observers, rng, power_offset=+2.5
            )
            if detector.is_sybil(IdentityClaim("loud", true_xy), reports):
                rejections += 1
        assert rejections <= 4

    def test_power_outside_legal_range_flagged(self):
        """A common offset beyond the tolerance is itself suspicious."""
        rng = np.random.default_rng(2)
        detector = self._detector()
        observers = [(0.0, 0.0), (300.0, 0.0), (600.0, 0.0)]
        true_xy = (200.0, 0.0)
        rejections = 0
        for _ in range(30):
            reports = self._reports_for(
                detector, true_xy, observers, rng, power_offset=+12.0
            )
            if detector.is_sybil(IdentityClaim("blaster", true_xy), reports):
                rejections += 1
        assert rejections >= 25

    def test_untestable_claim_not_flagged(self):
        detector = self._detector()
        claim = IdentityClaim("lonely", (100.0, 0.0))
        report = WitnessReport("w0", (0.0, 0.0), -70.0, n_samples=50)
        assert not detector.is_sybil(claim, [report])

    def test_more_witnesses_more_power(self):
        """The cooperative property: witness count drives detection."""
        rng = np.random.default_rng(3)
        detector = self._detector()
        true_xy = (200.0, 0.0)
        claimed_xy = (252.0, 0.0)  # subtle 52 m lie

        def rejection_rate(n_observers):
            observers = [
                (float(x), 0.0) for x in np.linspace(0, 700, n_observers)
            ]
            hits = 0
            for _ in range(60):
                reports = self._reports_for(detector, true_xy, observers, rng)
                if detector.is_sybil(IdentityClaim("s", claimed_xy), reports):
                    hits += 1
            return hits / 60

        assert rejection_rate(10) > rejection_rate(3)

    def test_model_mismatch_breaks_the_test(self):
        """Fig. 11b's mechanism: wrong assumed exponent -> chaos."""
        rng = np.random.default_rng(4)
        detector = self._detector()
        # Reality has a steeper exponent than the detector assumes (the
        # geometry keeps means above the censoring filter).
        reality = LogNormalShadowingModel(path_loss_exponent=2.5, sigma_db=2.0)
        budget = LinkBudget(tx_power_dbm=20.0)
        observers = [(50.0, 0.0), (120.0, 0.0), (200.0, 0.0), (260.0, 0.0)]
        true_xy = (150.0, 20.0)
        false_alarms = 0
        for _ in range(30):
            reports = []
            for index, obs_xy in enumerate(observers):
                d = max(np.hypot(true_xy[0] - obs_xy[0], true_xy[1] - obs_xy[1]), 1.0)
                rssi = reality.mean_rssi(d, budget) + rng.normal(0, 2.0)
                reports.append(
                    WitnessReport(f"w{index}", obs_xy, float(rssi), n_samples=50)
                )
            if detector.is_sybil(IdentityClaim("honest", true_xy), reports):
                false_alarms += 1
        # A healthy test would false-alarm ~5% of the time (alpha);
        # under model mismatch it condemns honest vehicles far oftener.
        assert false_alarms >= 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CpvsadConfig(sigma_db=0.0)
        with pytest.raises(ValueError):
            CpvsadConfig(significance=1.5)
        with pytest.raises(ValueError):
            CpvsadConfig(min_observers=0)


class TestBouassida:
    def test_physically_plausible_series_passes(self):
        rng = np.random.default_rng(0)
        values = -70 + np.cumsum(rng.normal(0, 0.5, 100))
        series = RSSITimeSeries.from_values("ok", values)
        assert not BouassidaDetector().is_sybil(series)

    def test_teleporting_series_flagged(self):
        rng = np.random.default_rng(1)
        values = np.where(rng.uniform(size=100) < 0.5, -50.0, -90.0)
        series = RSSITimeSeries.from_values("jumpy", values)
        assert BouassidaDetector().is_sybil(series)

    def test_short_series_not_judged(self):
        series = RSSITimeSeries.from_values("short", [-50, -90, -50])
        assert not BouassidaDetector().is_sybil(series)

    def test_max_step_grows_with_dt(self):
        detector = BouassidaDetector()
        assert detector.max_step_db(1.0) > detector.max_step_db(0.1)

    def test_violation_rate_bounds(self):
        rng = np.random.default_rng(2)
        series = RSSITimeSeries.from_values("x", rng.normal(-70, 1, 50))
        rate = BouassidaDetector().violation_rate(series)
        assert 0.0 <= rate <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BouassidaConfig(max_speed_mps=0.0)
        with pytest.raises(ValueError):
            BouassidaConfig(violation_fraction=2.0)
        with pytest.raises(ValueError):
            BouassidaDetector().max_step_db(0.0)


class TestDemirbas:
    def _observations(self, rng, sybil_offset=6.0):
        """Two receivers, one co-located identity pair + one distinct."""

        def series(level):
            return RSSITimeSeries.from_values(
                "x", level + rng.normal(0, 0.5, 50)
            )

        return {
            "r1": {
                "mal": series(-60.0),
                "syb": series(-60.0 + sybil_offset),
                "other": series(-75.0),
            },
            "r2": {
                "mal": series(-80.0),
                "syb": series(-80.0 + sybil_offset),
                "other": series(-65.0),
            },
        }

    def test_colocated_pair_flagged(self):
        rng = np.random.default_rng(0)
        detector = DemirbasDetector()
        pairs = detector.sybil_pairs(self._observations(rng))
        assert ("mal", "syb") in pairs

    def test_distinct_node_not_flagged(self):
        rng = np.random.default_rng(1)
        detector = DemirbasDetector()
        ids = detector.sybil_ids(self._observations(rng))
        assert "other" not in ids

    def test_single_receiver_cannot_test(self):
        rng = np.random.default_rng(2)
        observations = {"r1": self._observations(rng)["r1"]}
        assert DemirbasDetector().sybil_pairs(observations) == set()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DemirbasConfig(match_tolerance_db=0.0)
        with pytest.raises(ValueError):
            DemirbasConfig(min_matching_pairs=0)


class TestChen:
    def test_same_distribution_flagged(self):
        rng = np.random.default_rng(0)
        a = RSSITimeSeries.from_values("a", rng.normal(-70, 3, 200))
        b = RSSITimeSeries.from_values("b", rng.normal(-70, 3, 200))
        c = RSSITimeSeries.from_values("c", rng.normal(-85, 3, 200))
        detector = ChenDetector()
        pairs = detector.sybil_pairs({"a": a, "b": b, "c": c})
        assert ("a", "b") in pairs
        assert ("a", "c") not in pairs

    def test_short_series_ignored(self):
        rng = np.random.default_rng(1)
        a = RSSITimeSeries.from_values("a", rng.normal(-70, 3, 5))
        b = RSSITimeSeries.from_values("b", rng.normal(-70, 3, 200))
        assert ChenDetector().sybil_pairs({"a": a, "b": b}) == set()

    def test_pvalue_range(self):
        rng = np.random.default_rng(2)
        a = RSSITimeSeries.from_values("a", rng.normal(-70, 3, 100))
        b = RSSITimeSeries.from_values("b", rng.normal(-70, 3, 100))
        assert 0.0 <= ChenDetector().pair_pvalue(a, b) <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChenConfig(similarity_pvalue=0.0)
        with pytest.raises(ValueError):
            ChenConfig(min_samples=1)


class TestMethodMatrix:
    def test_table1_rows_present(self):
        assert "Voiceprint" in METHOD_MATRIX
        assert len(METHOD_MATRIX) == 8

    def test_voiceprint_properties(self):
        rpm, cd, ci, soi, mobility = METHOD_MATRIX["Voiceprint"]
        assert rpm == "Model-free"
        assert cd == "D"
        assert ci == "I"
        assert soi is False
        assert mobility == "High mobility"
