"""Tests for trace and boundary persistence."""

import io

import numpy as np
import pytest

from repro.core.lda import DecisionLine
from repro.core.timeseries import RSSITimeSeries
from repro.io import (
    BoundaryRecord,
    load_boundary,
    load_observations,
    load_trace_csv,
    save_boundary,
    save_observations,
    save_trace_csv,
)


class TestTraceCsv:
    def test_roundtrip(self, tmp_path):
        records = [(0.1, "a", -70.0), (0.2, "b", -81.5), (0.3, "a", -70.5)]
        path = tmp_path / "trace.csv"
        assert save_trace_csv(records, path) == 3
        assert load_trace_csv(path) == records

    def test_roundtrip_via_stream(self):
        records = [(1.0, "x", -60.0)]
        buffer = io.StringIO()
        save_trace_csv(records, buffer)
        buffer.seek(0)
        assert load_trace_csv(buffer) == records

    def test_comments_skipped(self):
        text = "timestamp,identity,rssi_dbm\n# comment\n1.0,a,-70.0\n"
        assert load_trace_csv(io.StringIO(text)) == [(1.0, "a", -70.0)]

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            load_trace_csv(io.StringIO(""))

    def test_wrong_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(io.StringIO("t,i,r\n1.0,a,-70\n"))

    def test_malformed_row_rejected(self):
        text = "timestamp,identity,rssi_dbm\n1.0,a\n"
        with pytest.raises(ValueError, match="malformed"):
            load_trace_csv(io.StringIO(text))

    def test_non_numeric_rejected(self):
        text = "timestamp,identity,rssi_dbm\nnot-a-number,a,-70\n"
        with pytest.raises(ValueError, match="malformed"):
            load_trace_csv(io.StringIO(text))


class TestObservations:
    def test_roundtrip(self, tmp_path):
        observations = {
            "a": RSSITimeSeries.from_values("a", [-70.0, -71.0, -69.0]),
            "b": RSSITimeSeries.from_values("b", [-80.0, -82.0], start=0.05),
        }
        path = tmp_path / "obs.csv"
        save_observations(observations, path)
        loaded = load_observations(path)
        assert set(loaded) == {"a", "b"}
        for identity in observations:
            assert np.allclose(
                loaded[identity].values, observations[identity].values
            )
            assert np.allclose(
                loaded[identity].timestamps, observations[identity].timestamps
            )

    def test_merged_log_is_time_ordered(self):
        observations = {
            "a": RSSITimeSeries.from_values("a", [-70.0] * 5),
            "b": RSSITimeSeries.from_values("b", [-80.0] * 5, start=0.05),
        }
        buffer = io.StringIO()
        save_observations(observations, buffer)
        buffer.seek(0)
        records = load_trace_csv(buffer)
        times = [r[0] for r in records]
        assert times == sorted(times)

    def test_detector_replay(self, tmp_path):
        """A saved drive can be replayed through the detector."""
        from repro.core import ConstantThreshold, VoiceprintDetector
        from repro.sim import FieldTestConfig, run_field_test

        drive = run_field_test(
            FieldTestConfig(environment="rural", duration_s=40.0, seed=9)
        )
        path = tmp_path / "drive.csv"
        save_observations(drive.observations["3"], path)
        detector = VoiceprintDetector(threshold=ConstantThreshold(0.05))
        for identity, series in load_observations(path).items():
            detector.load_series(series)
        report = detector.detect(density=4.0)
        assert "101" in report.sybil_ids


class TestBoundary:
    def test_roundtrip(self, tmp_path):
        record = BoundaryRecord(
            line=DecisionLine(k=0.0005, b=0.048),
            trained_on={"densities": [10, 40, 80], "seed": 7},
        )
        path = tmp_path / "boundary.json"
        save_boundary(record, path)
        loaded = load_boundary(path)
        assert loaded.line == record.line
        assert loaded.trained_on["seed"] == 7

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other/9", "k": 1, "b": 2}')
        with pytest.raises(ValueError, match="format"):
            load_boundary(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "voiceprint-boundary/1", "k": 1}')
        with pytest.raises(ValueError, match="missing"):
            load_boundary(path)
