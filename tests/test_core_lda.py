"""Unit tests for repro.core.lda (LDA + the decision line fit)."""

import numpy as np
import pytest

from repro.core.lda import DecisionLine, fit_decision_line, fit_lda


def _clouds(rng, n=400):
    """Separable clouds mimicking Fig. 10's structure."""
    densities = rng.uniform(10, 100, size=n)
    # Sybil pairs: small distances growing mildly with density.
    pos_dist = rng.normal(0.02, 0.008, size=n) + densities * 1e-4
    # Other pairs: large distances.
    neg_dist = rng.uniform(0.15, 1.0, size=n)
    positives = np.column_stack([densities, np.abs(pos_dist)])
    negatives = np.column_stack([densities, neg_dist])
    return negatives, positives


class TestFitLda:
    def test_separates_comparable_variance_clouds(self):
        # LDA's sweet spot: two Gaussians with similar covariances.
        rng = np.random.default_rng(0)
        densities = rng.uniform(10, 100, size=400)
        positives = np.column_stack(
            [densities, rng.normal(0.1, 0.05, size=400)]
        )
        negatives = np.column_stack(
            [densities, rng.normal(0.6, 0.05, size=400)]
        )
        model = fit_lda(negatives, positives)
        correct = sum(model.predict(p) == 1 for p in positives) + sum(
            model.predict(n) == 0 for n in negatives
        )
        assert correct / (len(positives) + len(negatives)) > 0.98

    def test_unequal_variances_degrade_gracefully(self):
        # Fig. 10's actual structure (tight positives, broad negatives)
        # violates the pooled-covariance assumption; accuracy drops but
        # the discriminant direction stays usable — this is exactly why
        # fit_decision_line does not use the raw LDA boundary.
        rng = np.random.default_rng(0)
        negatives, positives = _clouds(rng)
        model = fit_lda(negatives, positives)
        correct = sum(model.predict(p) == 1 for p in positives) + sum(
            model.predict(n) == 0 for n in negatives
        )
        assert correct / (len(positives) + len(negatives)) > 0.85

    def test_score_sign_matches_prediction(self):
        rng = np.random.default_rng(1)
        negatives, positives = _clouds(rng, n=50)
        model = fit_lda(negatives, positives)
        for point in np.vstack([negatives[:5], positives[:5]]):
            assert (model.score(point) > 0) == (model.predict(point) == 1)

    def test_means_recorded(self):
        rng = np.random.default_rng(2)
        negatives, positives = _clouds(rng, n=100)
        model = fit_lda(negatives, positives)
        assert model.mean_positive[1] < model.mean_negative[1]

    def test_rejects_empty_class(self):
        with pytest.raises(ValueError):
            fit_lda(np.zeros((0, 2)), np.ones((3, 2)))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            fit_lda(np.zeros((3, 2)), np.ones((3, 3)))

    def test_degenerate_covariance_survives(self):
        # All points at one density: ridge keeps the solve alive.
        negatives = np.column_stack([np.full(20, 50.0), np.linspace(0.5, 1, 20)])
        positives = np.column_stack([np.full(20, 50.0), np.linspace(0.0, 0.1, 20)])
        model = fit_lda(negatives, positives)
        assert model.predict([50.0, 0.05]) == 1
        assert model.predict([50.0, 0.9]) == 0

    def test_score_dimension_check(self):
        rng = np.random.default_rng(3)
        negatives, positives = _clouds(rng, n=30)
        model = fit_lda(negatives, positives)
        with pytest.raises(ValueError):
            model.score([1.0, 2.0, 3.0])


class TestDecisionLine:
    def test_threshold_at(self):
        line = DecisionLine(k=0.001, b=0.05)
        assert line.threshold_at(100.0) == pytest.approx(0.15)

    def test_is_sybil_pair(self):
        line = DecisionLine(k=0.0, b=0.1)
        assert line.is_sybil_pair(50.0, 0.05)
        assert not line.is_sybil_pair(50.0, 0.2)

    def test_rejects_negative_density(self):
        with pytest.raises(ValueError):
            DecisionLine(k=0.0, b=0.1).threshold_at(-1.0)


class TestFitDecisionLine:
    def test_separable_clouds_yield_working_line(self):
        rng = np.random.default_rng(4)
        negatives, positives = _clouds(rng)
        line = fit_decision_line(negatives, positives)
        tpr = np.mean(
            [line.is_sybil_pair(d, dist) for d, dist in positives]
        )
        fpr = np.mean(
            [line.is_sybil_pair(d, dist) for d, dist in negatives]
        )
        assert tpr > 0.9
        assert fpr < 0.05

    def test_respects_fpr_budget(self):
        rng = np.random.default_rng(5)
        negatives, positives = _clouds(rng, n=2000)
        line = fit_decision_line(negatives, positives, max_pair_fpr=0.001)
        fpr = np.mean([line.is_sybil_pair(d, dist) for d, dist in negatives])
        assert fpr <= 0.01

    def test_threshold_positive_over_training_range(self):
        rng = np.random.default_rng(6)
        negatives, positives = _clouds(rng)
        line = fit_decision_line(negatives, positives)
        for density in (10, 50, 100):
            assert line.threshold_at(density) > 0.0

    def test_slope_tracks_density_dependence(self):
        # The NP threshold tracks the negatives' lower tail; when that
        # tail rises with density, so must the fitted line.
        rng = np.random.default_rng(7)
        n = 3000
        densities = rng.uniform(10, 100, size=n)
        positives = np.column_stack(
            [densities, np.abs(rng.normal(0, 0.003, n))]
        )
        neg_floor = 0.1 + 0.004 * densities
        negatives = np.column_stack(
            [densities, neg_floor + rng.uniform(0, 0.5, n)]
        )
        line = fit_decision_line(negatives, positives)
        assert line.k > 0.001

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_decision_line(np.zeros((0, 2)), np.ones((5, 2)))

    def test_rejects_bad_fpr(self):
        rng = np.random.default_rng(8)
        negatives, positives = _clouds(rng, n=50)
        with pytest.raises(ValueError):
            fit_decision_line(negatives, positives, max_pair_fpr=1.5)

    def test_single_density_gives_constant_line(self):
        negatives = np.column_stack([np.full(50, 40.0), np.linspace(0.3, 1, 50)])
        positives = np.column_stack([np.full(50, 40.0), np.linspace(0, 0.05, 50)])
        line = fit_decision_line(negatives, positives)
        assert line.k == 0.0
        assert 0.0 < line.b < 0.3
