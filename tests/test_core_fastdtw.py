"""Unit tests for repro.core.fastdtw."""

import numpy as np
import pytest

from repro.core.dtw import dtw, dtw_banded, warp_path_cells
from repro.core.fastdtw import (
    coarsen,
    dtw_banded_fast,
    expand_window,
    fastdtw,
    fastdtw_distance,
)


class TestCoarsen:
    def test_even_length(self):
        out = coarsen(np.array([1.0, 3.0, 5.0, 7.0]))
        assert np.allclose(out, [2.0, 6.0])

    def test_odd_length_keeps_tail(self):
        out = coarsen(np.array([1.0, 3.0, 9.0]))
        assert np.allclose(out, [2.0, 9.0])

    def test_single_element(self):
        assert np.allclose(coarsen(np.array([4.0])), [4.0])

    def test_empty(self):
        assert coarsen(np.array([])).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            coarsen(np.zeros((2, 2)))


class TestExpandWindow:
    def test_contains_corners(self):
        window = expand_window([(1, 1), (2, 2)], 4, 4, radius=0)
        assert (1, 1) in window
        assert (4, 4) in window

    def test_radius_grows_window(self):
        small = set(expand_window([(1, 1), (2, 2)], 4, 4, radius=0))
        large = set(expand_window([(1, 1), (2, 2)], 4, 4, radius=2))
        assert small <= large
        assert len(large) > len(small)

    def test_cells_in_bounds(self):
        window = expand_window([(1, 1), (2, 2), (3, 3)], 5, 6, radius=1)
        assert all(1 <= i <= 5 and 1 <= j <= 6 for i, j in window)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            expand_window([(1, 1)], 2, 2, radius=-1)


class TestFastDtw:
    def test_exact_on_small_series(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=4), rng.normal(size=5)
        assert fastdtw(x, y, radius=1).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_upper_bounds_exact(self):
        rng = np.random.default_rng(1)
        for _ in range(15):
            n = int(rng.integers(10, 80))
            x, y = rng.normal(size=n), rng.normal(size=n + int(rng.integers(0, 5)))
            exact = dtw(x, y).distance
            fast = fastdtw(x, y, radius=1).distance
            assert fast >= exact - 1e-9

    def test_large_radius_recovers_exact(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=40), rng.normal(size=40)
        assert fastdtw(x, y, radius=40).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_identical_series_zero(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=128)
        assert fastdtw(x, x, radius=1).distance == 0.0

    def test_close_on_smooth_similar_series(self):
        # The detector's operating regime: aligned, similar series.
        t = np.linspace(0, 4 * np.pi, 200)
        x = np.sin(t)
        y = np.sin(t) + 0.01 * np.cos(5 * t)
        exact = dtw(x, y).distance
        fast = fastdtw(x, y, radius=1).distance
        assert fast <= exact * 1.1 + 1e-6

    def test_path_is_valid_warp_path(self):
        rng = np.random.default_rng(4)
        x, y = rng.normal(size=50), rng.normal(size=47)
        result = fastdtw(x, y, radius=2)
        assert warp_path_cells(result.path)
        assert result.path[0] == (1, 1)
        assert result.path[-1] == (50, 47)

    def test_distance_helper(self):
        rng = np.random.default_rng(5)
        x, y = rng.normal(size=30), rng.normal(size=30)
        assert fastdtw_distance(x, y, 2) == fastdtw(x, y, 2).distance

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            fastdtw([1.0], [1.0], radius=-1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fastdtw([], [1.0])


class TestBandedFast:
    def test_matches_generic_banded(self):
        rng = np.random.default_rng(6)
        for _ in range(8):
            n = int(rng.integers(5, 40))
            m = int(rng.integers(5, 40))
            x, y = rng.normal(size=n), rng.normal(size=m)
            radius = int(rng.integers(1, 8))
            fast = dtw_banded_fast(x, y, radius)
            generic = dtw_banded(x, y, radius)
            # Band constructions differ slightly at the edges; both are
            # valid constrained DTWs whose distance upper-bounds exact.
            exact = dtw(x, y).distance
            assert fast.distance >= exact - 1e-9
            assert warp_path_cells(fast.path)

    def test_equal_length_band_zero_is_pointwise(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([2.0, 2.0, 5.0])
        result = dtw_banded_fast(x, y, 0)
        assert result.distance == pytest.approx(1.0 + 0.0 + 4.0)

    def test_wide_band_equals_exact(self):
        rng = np.random.default_rng(7)
        x, y = rng.normal(size=25), rng.normal(size=30)
        assert dtw_banded_fast(x, y, 60).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_identical_series_zero(self):
        x = np.linspace(0, 1, 100)
        assert dtw_banded_fast(x, x, 10).distance == 0.0

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            dtw_banded_fast([1.0], [1.0], -1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw_banded_fast([], [1.0], 1)

    def test_monotone_in_radius(self):
        rng = np.random.default_rng(8)
        x, y = rng.normal(size=60), rng.normal(size=55)
        distances = [dtw_banded_fast(x, y, r).distance for r in (1, 3, 8, 20)]
        assert all(a >= b - 1e-9 for a, b in zip(distances, distances[1:]))
