"""Unit tests for repro.core.detector (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.thresholds import ConstantThreshold, LinearThreshold
from repro.core.timeseries import RSSITimeSeries


def _feed(detector, identity, values, start=0.0, interval=0.1):
    for index, value in enumerate(values):
        detector.observe(identity, start + index * interval, value)


def _synthetic_observations(rng, n_samples=200):
    """One attacker (3 streams sharing a waveform) + two normal nodes."""
    t = np.arange(n_samples) * 0.1
    shared = -70 + 5 * np.sin(2 * np.pi * t / 15) + np.cumsum(rng.normal(0, 0.4, n_samples))
    streams = {}
    for name, offset in (("mal", 0.0), ("syb1", 4.0), ("syb2", -3.0)):
        streams[name] = shared + offset + rng.normal(0, 0.3, n_samples)
    for name in ("norm1", "norm2"):
        independent = -75 + 6 * np.sin(2 * np.pi * t / 11 + rng.uniform(0, 6)) + np.cumsum(
            rng.normal(0, 0.5, n_samples)
        )
        streams[name] = independent
    return streams


class TestConfigValidation:
    def test_defaults_valid(self):
        DetectorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"observation_time": 0.0},
            {"min_samples": 1},
            {"fastdtw_radius": -1},
            {"band_radius_samples": -2},
            {"sigma_multiplier": 0.0},
            {"scale_mode": "bogus"},
            {"threshold_on": "bogus"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)


class TestCollection:
    def test_observe_creates_buffers(self):
        detector = VoiceprintDetector()
        detector.observe("a", 0.0, -70.0)
        detector.observe("b", 0.05, -80.0)
        assert detector.heard_identities == ("a", "b")

    def test_series_for(self):
        detector = VoiceprintDetector()
        detector.observe("a", 0.0, -70.0)
        assert len(detector.series_for("a")) == 1
        assert detector.series_for("missing") is None

    def test_buffers_trimmed(self):
        config = DetectorConfig(observation_time=5.0, min_samples=2)
        detector = VoiceprintDetector(config=config)
        for i in range(300):
            detector.observe("a", i * 0.1, -70.0)
        series = detector.series_for("a")
        assert series.start >= 300 * 0.1 - 2 * 5.0 - 0.2

    def test_load_series_adopts_buffer(self):
        detector = VoiceprintDetector()
        series = RSSITimeSeries.from_values("x", [-70.0] * 5)
        detector.load_series(series)
        assert detector.series_for("x") is series

    def test_forget(self):
        detector = VoiceprintDetector()
        detector.observe("a", 0.0, -70.0)
        detector.forget("a")
        assert detector.heard_identities == ()

    def test_reset(self):
        detector = VoiceprintDetector()
        detector.observe("a", 0.0, -70.0)
        detector.reset()
        assert detector.heard_identities == ()


class TestDetection:
    def _detector(self, rng, threshold=0.1, **config_kwargs):
        config = DetectorConfig(min_samples=50, **config_kwargs)
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(threshold), config=config
        )
        for name, values in _synthetic_observations(rng).items():
            _feed(detector, name, values)
        return detector

    def test_flags_sybil_cluster(self):
        detector = self._detector(np.random.default_rng(0))
        report = detector.detect(density=10.0)
        assert {"mal", "syb1", "syb2"} <= set(report.sybil_ids)

    def test_normal_nodes_survive(self):
        detector = self._detector(np.random.default_rng(1), threshold=0.05)
        report = detector.detect(density=10.0)
        assert "norm1" not in report.sybil_ids
        assert "norm2" not in report.sybil_ids

    def test_clusters_group_attacker(self):
        detector = self._detector(np.random.default_rng(2), threshold=0.05)
        report = detector.detect(density=10.0)
        clusters = report.sybil_clusters()
        assert any({"mal", "syb1", "syb2"} <= cluster for cluster in clusters)

    def test_distances_normalised_range(self):
        detector = self._detector(np.random.default_rng(3))
        report = detector.detect(density=10.0)
        values = list(report.distances.values())
        assert min(values) == 0.0
        assert max(values) == 1.0

    def test_raw_distances_present(self):
        detector = self._detector(np.random.default_rng(4))
        report = detector.detect(density=10.0)
        assert set(report.raw_distances) == set(report.distances)
        assert all(v >= 0 for v in report.raw_distances.values())

    def test_short_series_skipped(self):
        rng = np.random.default_rng(5)
        detector = self._detector(rng)
        _feed(detector, "fringe", [-90.0] * 5, start=18.0)
        report = detector.detect(density=10.0)
        assert "fringe" in report.skipped_ids
        assert "fringe" not in report.compared_ids

    def test_empty_detector_detects_nothing(self):
        detector = VoiceprintDetector(threshold=ConstantThreshold(0.5))
        report = detector.detect(density=10.0, now=0.0)
        assert report.sybil_ids == frozenset()
        assert report.compared_ids == ()

    def test_single_identity_no_pairs(self):
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(0.5), config=DetectorConfig(min_samples=5)
        )
        _feed(detector, "only", [-70.0 + i % 3 for i in range(100)])
        report = detector.detect(density=10.0)
        assert report.distances == {}
        assert report.sybil_ids == frozenset()

    def test_rejects_negative_density(self):
        detector = VoiceprintDetector()
        with pytest.raises(ValueError):
            detector.detect(density=-1.0)

    def test_window_respected(self):
        """Samples outside the observation window must not be compared."""
        rng = np.random.default_rng(6)
        config = DetectorConfig(observation_time=5.0, min_samples=10)
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(0.5), config=config
        )
        _feed(detector, "a", rng.normal(-70, 2, 300))
        report = detector.detect(density=10.0, now=30.0)
        # 5 s at 10 Hz -> at most ~51 samples in the compared window.
        series = detector.series_for("a").window(25.0, 30.0 + 1e-9)
        assert len(series) <= 51

    def test_threshold_on_raw_mode(self):
        rng = np.random.default_rng(7)
        detector = self._detector(rng, threshold=0.002, threshold_on="raw")
        report = detector.detect(density=10.0)
        # Sybil pairs should be under this raw per-step threshold.
        assert {"mal", "syb1", "syb2"} <= set(report.sybil_ids)

    def test_exact_dtw_mode_runs(self):
        rng = np.random.default_rng(8)
        detector = self._detector(rng, use_exact_dtw=True)
        report = detector.detect(density=10.0)
        assert report.compared_ids

    def test_per_series_scale_mode_runs(self):
        rng = np.random.default_rng(9)
        detector = self._detector(rng, scale_mode="per-series")
        report = detector.detect(density=10.0)
        assert report.compared_ids

    def test_default_threshold_is_paper_line(self):
        detector = VoiceprintDetector()
        assert isinstance(detector.threshold, LinearThreshold)


class TestPowerSpoofingInvariance:
    def test_constant_offset_cancelled(self):
        """Sybil streams with big constant power offsets still cluster."""
        rng = np.random.default_rng(10)
        streams = _synthetic_observations(rng)
        streams["syb1"] = streams["syb1"] + 15.0  # extreme spoof
        config = DetectorConfig(min_samples=50)
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(0.1), config=config
        )
        for name, values in streams.items():
            _feed(detector, name, values)
        report = detector.detect(density=10.0)
        assert {"mal", "syb1", "syb2"} <= set(report.sybil_ids)


class TestStaleIdentitySweep:
    """Long-run memory: silent identities must be forgotten (bugfix).

    A roadside observer hears thousands of one-shot identities over a
    long run (every passing vehicle, every pseudonym change).  Before
    the sweep, each left a buffer behind forever; this is the
    regression test that failed against the leaking detector.
    """

    def test_one_shot_identities_are_swept(self):
        config = DetectorConfig(observation_time=20.0, min_samples=2)
        detector = VoiceprintDetector(config=config)
        # 10k identities, each heard exactly once, 0.1s apart: the
        # stream spans 1000s, identities fall silent immediately.
        for i in range(10_000):
            detector.observe(f"car{i}", i * 0.1, -70.0)
        # Only identities newer than 2x observation_time (40s = 400
        # beacons) behind the latest can legally remain.
        assert len(detector.heard_identities) <= 1_000

    def test_sweep_counts_forgets_when_metrics_enabled(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.enable()
        config = DetectorConfig(observation_time=20.0, min_samples=2)
        detector = VoiceprintDetector(config=config, registry=registry)
        for i in range(5_000):
            detector.observe(f"car{i}", i * 0.1, -70.0)
        assert registry.counter("detector.stale_forgets").value > 0

    def test_active_identities_survive_the_sweep(self):
        config = DetectorConfig(observation_time=20.0, min_samples=2)
        detector = VoiceprintDetector(config=config)
        for i in range(3_000):
            t = i * 0.1
            detector.observe("steady", t, -70.0)
            detector.observe(f"oneshot{i}", t, -75.0)
        assert "steady" in detector.heard_identities
        series = detector.series_for("steady")
        assert len(series) > 0

    def test_sweep_drops_incremental_engine_state(self):
        config = DetectorConfig(
            observation_time=20.0,
            min_samples=2,
            pairwise_engine=True,
            pairwise_incremental=True,
        )
        detector = VoiceprintDetector(config=config)
        for i in range(3_000):
            detector.observe(f"car{i}", i * 0.1, -70.0)
        # The engine's per-identity envelope table must not retain the
        # swept tail either (that's the other half of the leak).
        engine = detector._engine
        assert engine is not None
        tracked = getattr(engine, "_inc_series", None)
        if tracked is not None:
            assert len(tracked) <= len(detector.heard_identities) + 1

    def test_reset_rearms_the_sweep_schedule(self):
        config = DetectorConfig(observation_time=20.0, min_samples=2)
        detector = VoiceprintDetector(config=config)
        for i in range(1_000):
            detector.observe(f"car{i}", i * 0.1, -70.0)
        detector.reset()
        for i in range(1_000):
            detector.observe(f"bus{i}", i * 0.1, -70.0)
        assert len(detector.heard_identities) <= 1_000


class TestOwnershipGuard:
    def test_foreign_thread_mutation_raises(self):
        import threading

        detector = VoiceprintDetector()
        detector.enable_ownership_guard()
        detector.observe("a", 0.0, -70.0)
        failures = []

        def intruder():
            try:
                detector.observe("a", 1.0, -70.0)
            except RuntimeError as error:
                failures.append(error)

        thread = threading.Thread(target=intruder)
        thread.start()
        thread.join()
        assert len(failures) == 1
        assert "single-writer" in str(failures[0])

    def test_claim_ownership_hands_over(self):
        import threading

        detector = VoiceprintDetector()
        detector.enable_ownership_guard()
        detector.observe("a", 0.0, -70.0)
        outcome = []

        def new_owner():
            detector.claim_ownership()
            detector.observe("a", 1.0, -70.0)
            outcome.append("ok")

        thread = threading.Thread(target=new_owner)
        thread.start()
        thread.join()
        assert outcome == ["ok"]

    def test_guard_default_off_allows_cross_thread(self):
        import threading

        from repro.core.detector import set_ownership_guard

        previous = set_ownership_guard(False)
        try:
            detector = VoiceprintDetector()
            detector.observe("a", 0.0, -70.0)
            errors = []

            def other():
                try:
                    detector.observe("a", 1.0, -70.0)
                except RuntimeError as error:  # pragma: no cover
                    errors.append(error)

            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
            assert errors == []
        finally:
            set_ownership_guard(previous)
