"""Unit tests for repro.core.timeseries."""


import numpy as np
import pytest

from repro.core.timeseries import RSSISample, RSSITimeSeries, merge_series


class TestRSSISample:
    def test_fields(self):
        sample = RSSISample(1.5, -70.0)
        assert sample.timestamp == 1.5
        assert sample.rssi == -70.0

    def test_ordering_by_timestamp(self):
        assert RSSISample(1.0, -50.0) < RSSISample(2.0, -90.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite_timestamp(self, bad):
        with pytest.raises(ValueError):
            RSSISample(bad, -70.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("-inf")])
    def test_rejects_non_finite_rssi(self, bad):
        with pytest.raises(ValueError):
            RSSISample(0.0, bad)


class TestAppend:
    def test_append_and_len(self):
        series = RSSITimeSeries("a")
        series.append(0.0, -70.0)
        series.append(0.1, -71.0)
        assert len(series) == 2

    def test_rejects_out_of_order(self):
        series = RSSITimeSeries("a")
        series.append(1.0, -70.0)
        with pytest.raises(ValueError, match="out-of-order"):
            series.append(0.5, -70.0)

    def test_allows_equal_timestamps(self):
        series = RSSITimeSeries("a")
        series.append(1.0, -70.0)
        series.append(1.0, -72.0)
        assert len(series) == 2

    def test_rejects_non_finite(self):
        series = RSSITimeSeries("a")
        with pytest.raises(ValueError):
            series.append(float("nan"), -70.0)
        with pytest.raises(ValueError):
            series.append(0.0, float("inf"))

    def test_from_values_cadence(self):
        series = RSSITimeSeries.from_values("a", [-70, -71, -72], interval=0.1)
        assert np.allclose(series.timestamps, [0.0, 0.1, 0.2])
        assert np.allclose(series.values, [-70, -71, -72])


class TestAccessors:
    def _series(self):
        return RSSITimeSeries.from_values("x", [-70.0, -72.0, -74.0, -76.0])

    def test_values_and_timestamps_are_arrays(self):
        series = self._series()
        assert isinstance(series.values, np.ndarray)
        assert series.values.dtype == float

    def test_start_end_duration(self):
        series = self._series()
        assert series.start == 0.0
        assert series.end == pytest.approx(0.3)
        assert series.duration == pytest.approx(0.3)

    def test_empty_raises(self):
        empty = RSSITimeSeries("e")
        with pytest.raises(ValueError):
            _ = empty.start
        with pytest.raises(ValueError):
            _ = empty.end
        with pytest.raises(ValueError):
            empty.mean()
        with pytest.raises(ValueError):
            empty.std()

    def test_mean_std(self):
        series = self._series()
        assert series.mean() == pytest.approx(-73.0)
        assert series.std() == pytest.approx(np.std([-70, -72, -74, -76]))

    def test_iteration_yields_samples(self):
        samples = list(self._series())
        assert all(isinstance(s, RSSISample) for s in samples)
        assert samples[0].rssi == -70.0

    def test_repr_mentions_identity(self):
        assert "x" in repr(self._series())


class TestWindowing:
    def _series(self):
        return RSSITimeSeries.from_values("w", list(range(-100, -80)), interval=1.0)

    def test_window_half_open(self):
        series = self._series()
        window = series.window(5.0, 10.0)
        assert len(window) == 5
        assert window.start == 5.0
        assert window.end == 9.0

    def test_window_empty_range(self):
        assert len(self._series().window(100.0, 200.0)) == 0

    def test_window_inverted_raises(self):
        with pytest.raises(ValueError):
            self._series().window(10.0, 5.0)

    def test_window_preserves_identity(self):
        assert self._series().window(0, 3).identity == "w"

    def test_tail(self):
        series = self._series()
        tail = series.tail(4.0)
        assert len(tail) == 5  # inclusive of the cutoff edge
        assert tail.end == series.end

    def test_tail_zero(self):
        tail = self._series().tail(0.0)
        assert len(tail) == 1

    def test_tail_negative_raises(self):
        with pytest.raises(ValueError):
            self._series().tail(-1.0)

    def test_drop_before(self):
        series = self._series()
        series.drop_before(15.0)
        assert series.start == 15.0
        assert len(series) == 5


class TestLossStatistics:
    def test_expected_samples_full(self):
        series = RSSITimeSeries.from_values("a", [-70] * 11, interval=0.1)
        assert series.expected_samples(0.1) == 11
        assert series.loss_rate(0.1) == 0.0

    def test_loss_rate_with_gaps(self):
        series = RSSITimeSeries("a")
        for i in range(0, 20, 2):  # every second sample missing
            series.append(i * 0.1, -70.0)
        assert series.loss_rate(0.1) == pytest.approx(0.5, abs=0.06)

    def test_largest_gap(self):
        series = RSSITimeSeries("a")
        series.append(0.0, -70)
        series.append(0.1, -70)
        series.append(5.0, -70)
        assert series.largest_gap() == pytest.approx(4.9)

    def test_largest_gap_short_series(self):
        series = RSSITimeSeries("a")
        assert series.largest_gap() == 0.0
        series.append(0.0, -70)
        assert series.largest_gap() == 0.0

    def test_expected_samples_bad_interval(self):
        series = RSSITimeSeries.from_values("a", [-70, -70])
        with pytest.raises(ValueError):
            series.expected_samples(0.0)


class TestMerge:
    def test_merge_interleaved(self):
        a = RSSITimeSeries("m", [RSSISample(0.0, -70), RSSISample(0.2, -71)])
        b = RSSITimeSeries("m", [RSSISample(0.1, -72), RSSISample(0.3, -73)])
        merged = merge_series("m", [a, b])
        assert len(merged) == 4
        assert np.all(np.diff(merged.timestamps) >= 0)

    def test_merge_empty(self):
        merged = merge_series("m", [])
        assert len(merged) == 0
