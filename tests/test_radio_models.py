"""Unit tests for the radio propagation models."""

import math

import numpy as np
import pytest

from repro.radio.base import LinkBudget, db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm, wavelength
from repro.radio.free_space import FreeSpaceModel, FriisModel, fspl_db
from repro.radio.rayleigh import RayleighFadingModel
from repro.radio.shadowing import LogNormalShadowingModel
from repro.radio.two_ray import TwoRayGroundModel


class TestUnits:
    def test_dbm_mw_roundtrip(self):
        for dbm in (-95.0, 0.0, 20.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_known_values(self):
        assert dbm_to_mw(0.0) == 1.0
        assert dbm_to_mw(20.0) == pytest.approx(100.0)
        assert db_to_linear(3.0) == pytest.approx(1.995, abs=0.01)
        assert linear_to_db(10.0) == pytest.approx(10.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_wavelength_dsrc(self):
        # ~5.1 cm at 5.89 GHz.
        assert wavelength() == pytest.approx(0.0509, abs=0.0005)

    def test_wavelength_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            wavelength(0.0)


class TestLinkBudget:
    def test_eirp(self):
        budget = LinkBudget(tx_power_dbm=20.0, tx_gain_dbi=7.0, rx_gain_dbi=7.0)
        assert budget.eirp_dbm == 27.0

    def test_received(self):
        budget = LinkBudget(tx_power_dbm=20.0, rx_gain_dbi=7.0)
        assert budget.received_dbm(100.0) == pytest.approx(-73.0)


class TestFreeSpace:
    def test_fspl_20db_per_decade(self):
        assert fspl_db(100.0) - fspl_db(10.0) == pytest.approx(20.0)

    def test_fspl_frequency_dependence(self):
        assert fspl_db(100.0, 5.9e9) > fspl_db(100.0, 2.4e9)

    def test_reference_value(self):
        # FSPL at 1 km, 5.89 GHz ~ 107.8 dB.
        assert fspl_db(1000.0, 5.89e9) == pytest.approx(107.85, abs=0.2)

    def test_friis_alias(self):
        assert FriisModel is FreeSpaceModel

    def test_near_field_clamp(self):
        model = FreeSpaceModel(reference_distance_m=1.0)
        assert model.path_loss_db(0.01) == model.path_loss_db(1.0)

    def test_monotone_in_distance(self):
        model = FreeSpaceModel()
        distances = np.linspace(1, 1000, 50)
        losses = [model.path_loss_db(d) for d in distances]
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_sample_equals_mean(self):
        model = FreeSpaceModel()
        budget = LinkBudget()
        rng = np.random.default_rng(0)
        assert model.sample_rssi(100.0, budget, rng) == model.mean_rssi(100.0, budget)

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            fspl_db(0.0)
        with pytest.raises(ValueError):
            FreeSpaceModel().path_loss_db(-1.0)


class TestTwoRay:
    def test_crossover_distance(self):
        model = TwoRayGroundModel(tx_height_m=1.5, rx_height_m=1.5)
        expected = 4 * math.pi * 1.5 * 1.5 / wavelength()
        assert model.crossover_distance_m == pytest.approx(expected)

    def test_matches_friis_below_crossover(self):
        model = TwoRayGroundModel()
        d = model.crossover_distance_m / 2.0
        assert model.path_loss_db(d) == pytest.approx(fspl_db(d))

    def test_40db_per_decade_beyond_crossover(self):
        model = TwoRayGroundModel()
        d = model.crossover_distance_m * 2.0
        assert model.path_loss_db(10 * d) - model.path_loss_db(d) == pytest.approx(
            40.0
        )

    def test_continuity_near_crossover(self):
        model = TwoRayGroundModel()
        d = model.crossover_distance_m
        jump = abs(model.path_loss_db(d * 1.001) - model.path_loss_db(d * 0.999))
        assert jump < 1.0

    def test_rejects_bad_heights(self):
        with pytest.raises(ValueError):
            TwoRayGroundModel(tx_height_m=0.0)


class TestShadowing:
    def test_mean_path_loss_slope(self):
        model = LogNormalShadowingModel(path_loss_exponent=3.0)
        assert model.path_loss_db(100.0) - model.path_loss_db(10.0) == pytest.approx(
            30.0
        )

    def test_samples_scatter_around_mean(self):
        model = LogNormalShadowingModel(path_loss_exponent=2.0, sigma_db=4.0)
        budget = LinkBudget()
        rng = np.random.default_rng(1)
        samples = [model.sample_rssi(200.0, budget, rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(
            model.mean_rssi(200.0, budget), abs=0.3
        )
        assert np.std(samples) == pytest.approx(4.0, abs=0.3)

    def test_no_rng_gives_mean(self):
        model = LogNormalShadowingModel(sigma_db=4.0)
        budget = LinkBudget()
        assert model.sample_rssi(100.0, budget) == model.mean_rssi(100.0, budget)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LogNormalShadowingModel(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            LogNormalShadowingModel(sigma_db=-1.0)


class TestRayleigh:
    def test_mean_power_preserved(self):
        model = RayleighFadingModel(path_loss_exponent=2.0)
        budget = LinkBudget()
        rng = np.random.default_rng(2)
        mean_rssi = model.mean_rssi(100.0, budget)
        samples = np.array(
            [model.sample_rssi(100.0, budget, rng) for _ in range(5000)]
        )
        # Power average (linear) should match the mean, dB average sits lower.
        mean_power_db = 10 * np.log10(np.mean(10 ** (samples / 10)))
        assert mean_power_db == pytest.approx(mean_rssi, abs=0.3)
        assert np.mean(samples) < mean_rssi

    def test_deep_fades_occur(self):
        model = RayleighFadingModel()
        budget = LinkBudget()
        rng = np.random.default_rng(3)
        samples = np.array(
            [model.sample_rssi(100.0, budget, rng) for _ in range(3000)]
        )
        mean = model.mean_rssi(100.0, budget)
        assert np.min(samples) < mean - 15.0

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            RayleighFadingModel(path_loss_exponent=-1.0)
