"""Tests for the parallel sharded evaluation layer (repro.eval.parallel)."""

import os
import signal
import time

import pytest

from repro.core.thresholds import ConstantThreshold
from repro.baselines.cpvsad import CpvsadConfig, CpvsadDetector
from repro.eval.parallel import (
    Checkpoint,
    TaskError,
    TaskSpec,
    _chunk_preserving_order,
    derive_seed,
    resolve_task_timeout,
    resolve_workers,
    run_tasks,
    set_parallel_defaults,
)
from repro.eval.runner import run_cpvsad, run_voiceprint
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import InMemorySpanExporter, default_tracer
from repro.radio.base import LinkBudget
from repro.radio.dual_slope import DualSlopeModel
from repro.radio.environments import environment
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import HighwaySimulator


# ---------------------------------------------------------------------------
# Module-level task functions (workers unpickle them by reference)
# ---------------------------------------------------------------------------
def _square(x):
    return x * x


def _mul(x, factor=1):
    return x * factor


def _boom(x):
    raise ValueError(f"intentional failure on {x}")


def _die_once(marker, value):
    """SIGKILL the hosting process on first call, succeed on retry."""
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _die_in_child(parent_pid, value):
    """SIGKILL every worker attempt; only in-parent execution survives."""
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _slow_once(marker, value):
    """Overrun any sane deadline on first call, return fast on retry."""
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("slept")
        time.sleep(60.0)
    return value


def _count_units(n):
    default_registry().counter("test.parallel_units").inc(n)
    default_registry().histogram("test.parallel_hist").observe(float(n))
    return n


def _spanned(value):
    with default_tracer().span("parallel.test_span"):
        pass
    return value


def _registry():
    registry = MetricsRegistry()
    registry.enable()
    return registry


class TestRunTasksBasics:
    def test_serial_path(self):
        tasks = [TaskSpec(key=f"t{i}", fn=_square, args=(i,)) for i in range(4)]
        results = run_tasks(tasks, workers=1, registry=_registry())
        assert results == {f"t{i}": i * i for i in range(4)}

    def test_parallel_path(self):
        tasks = [TaskSpec(key=f"t{i}", fn=_square, args=(i,)) for i in range(6)]
        results = run_tasks(tasks, workers=3, registry=_registry())
        assert results == {f"t{i}": i * i for i in range(6)}

    def test_kwargs_travel(self):
        tasks = [
            TaskSpec(key=f"t{i}", fn=_mul, args=(i,), kwargs={"factor": 10})
            for i in range(3)
        ]
        results = run_tasks(tasks, workers=2, registry=_registry())
        assert results == {"t0": 0, "t1": 10, "t2": 20}

    def test_duplicate_keys_rejected(self):
        tasks = [TaskSpec(key="same", fn=_square, args=(i,)) for i in range(2)]
        with pytest.raises(ValueError, match="unique"):
            run_tasks(tasks, workers=1, registry=_registry())

    def test_single_task_runs_in_parent(self):
        registry = _registry()
        results = run_tasks(
            [TaskSpec(key="only", fn=_square, args=(5,))],
            workers=8,
            registry=registry,
        )
        assert results == {"only": 25}
        assert registry.counter("parallel.tasks_completed").value == 1

    def test_completion_metrics(self):
        registry = _registry()
        tasks = [TaskSpec(key=f"t{i}", fn=_square, args=(i,)) for i in range(4)]
        run_tasks(tasks, workers=2, registry=registry)
        assert registry.counter("parallel.tasks_completed").value == 4
        assert registry.histogram("parallel.task_ms").count == 4


class TestFailurePolicy:
    def test_killed_worker_is_retried(self, tmp_path):
        marker = str(tmp_path / "died.marker")
        registry = _registry()
        tasks = [
            TaskSpec(key="victim", fn=_die_once, args=(marker, 41)),
            TaskSpec(key="bystander", fn=_square, args=(3,)),
        ]
        results = run_tasks(tasks, workers=2, registry=registry)
        assert results == {"victim": 41, "bystander": 9}
        assert registry.counter("parallel.task_retries").value == 1
        assert registry.counter("parallel.serial_fallbacks").value == 0

    def test_persistent_death_degrades_to_serial(self):
        registry = _registry()
        tasks = [
            TaskSpec(key="doomed", fn=_die_in_child, args=(os.getpid(), 7)),
            TaskSpec(key="fine", fn=_square, args=(2,)),
        ]
        results = run_tasks(tasks, workers=2, retries=1, registry=registry)
        assert results == {"doomed": 7, "fine": 4}
        assert registry.counter("parallel.serial_fallbacks").value == 1
        assert registry.counter("parallel.task_retries").value == 1

    def test_timeout_reaps_and_retries(self, tmp_path):
        marker = str(tmp_path / "slow.marker")
        registry = _registry()
        tasks = [
            TaskSpec(key="slow", fn=_slow_once, args=(marker, 11)),
            TaskSpec(key="fast", fn=_square, args=(4,)),
        ]
        start = time.monotonic()
        results = run_tasks(tasks, workers=2, task_timeout=2.0, registry=registry)
        elapsed = time.monotonic() - start
        assert results == {"slow": 11, "fast": 16}
        assert registry.counter("parallel.task_retries").value == 1
        assert elapsed < 30.0  # the 60 s sleep was actually terminated

    def test_worker_exception_is_not_retried(self):
        registry = _registry()
        tasks = [
            TaskSpec(key="ok", fn=_square, args=(2,)),
            TaskSpec(key="bad", fn=_boom, args=(1,)),
        ]
        with pytest.raises(TaskError, match="ValueError"):
            run_tasks(tasks, workers=2, registry=registry)
        assert registry.counter("parallel.task_retries").value == 0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run_tasks(
                [TaskSpec(key="t", fn=_square, args=(1,))],
                workers=1,
                retries=-1,
                registry=_registry(),
            )


class TestCheckpoint:
    def test_record_and_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = Checkpoint(path, grid={"densities": [10, 20]})
        tasks = [TaskSpec(key=f"t{i}", fn=_square, args=(i,)) for i in range(3)]
        run_tasks(tasks, workers=1, checkpoint=first, registry=_registry())
        assert len(first) == 3

        resumed = Checkpoint(path, grid={"densities": [10, 20]})
        assert resumed.completed == ["t0", "t1", "t2"]
        registry = _registry()
        results = run_tasks(tasks, workers=1, checkpoint=resumed, registry=registry)
        assert results == {"t0": 0, "t1": 1, "t2": 4}
        assert registry.counter("parallel.tasks_resumed").value == 3
        assert registry.counter("parallel.tasks_completed").value == 0

    def test_partial_resume_runs_only_missing(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        checkpoint = Checkpoint(path)
        checkpoint.record("t0", 0)
        registry = _registry()
        tasks = [TaskSpec(key=f"t{i}", fn=_square, args=(i,)) for i in range(3)]
        results = run_tasks(tasks, workers=1, checkpoint=checkpoint, registry=registry)
        assert results == {"t0": 0, "t1": 1, "t2": 4}
        assert registry.counter("parallel.tasks_resumed").value == 1
        assert registry.counter("parallel.tasks_completed").value == 2

    def test_grid_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        Checkpoint(path, grid={"seed": 1})
        with pytest.raises(ValueError, match="different grid"):
            Checkpoint(path, grid={"seed": 2})

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro eval checkpoint"):
            Checkpoint(path)

    def test_checkpoint_written_under_parallel_execution(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = [TaskSpec(key=f"t{i}", fn=_square, args=(i,)) for i in range(4)]
        run_tasks(
            tasks, workers=2, checkpoint=Checkpoint(path), registry=_registry()
        )
        reread = Checkpoint(path)
        assert reread.completed == ["t0", "t1", "t2", "t3"]
        assert reread.get("t3") == 9


class TestSeedsAndChunks:
    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "d10", 0) == derive_seed(7, "d10", 0)

    def test_derive_seed_distinguishes_parts(self):
        seeds = {
            derive_seed(7, "d10", 0),
            derive_seed(7, "d10", 1),
            derive_seed(7, "d20", 0),
            derive_seed(8, "d10", 0),
        }
        assert len(seeds) == 4

    def test_derive_seed_fits_numpy(self):
        assert 0 <= derive_seed(2**40, "x") < 2**63

    def test_chunks_preserve_order_and_coverage(self):
        items = [f"v{i}" for i in range(7)]
        for n in (1, 2, 3, 7, 12):
            chunks = _chunk_preserving_order(items, n)
            assert [x for chunk in chunks for x in chunk] == items
            assert len(chunks) == min(n, len(items))
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1


class TestDefaultsResolution:
    def test_explicit_wins(self):
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "4")
        assert resolve_workers() == 4

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "many")
        assert resolve_workers() == 1

    def test_process_defaults_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "4")
        previous = set_parallel_defaults(workers=2, task_timeout=5.0)
        try:
            assert resolve_workers() == 2
            assert resolve_task_timeout() == 5.0
        finally:
            set_parallel_defaults(
                workers=previous.workers, task_timeout=previous.task_timeout
            )

    def test_restore_round_trip(self):
        previous = set_parallel_defaults(workers=6)
        restored = set_parallel_defaults(
            workers=previous.workers, task_timeout=previous.task_timeout
        )
        assert restored.workers == 6
        assert set_parallel_defaults(workers=previous.workers).workers == previous.workers

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_task_timeout(0.0)


class TestObservabilityMerge:
    def test_worker_metrics_fold_into_parent_registry(self):
        registry = _registry()
        tasks = [
            TaskSpec(key=f"t{i}", fn=_count_units, args=(i,)) for i in range(1, 5)
        ]
        results = run_tasks(tasks, workers=2, registry=registry)
        assert results == {f"t{i}": i for i in range(1, 5)}
        assert registry.counter("test.parallel_units").value == 1 + 2 + 3 + 4
        hist = registry.histogram("test.parallel_hist")
        assert hist.count == 4
        assert hist.summary()["max"] == 4.0

    def test_disabled_registry_stays_silent(self):
        registry = MetricsRegistry(enabled=False)
        tasks = [TaskSpec(key=f"t{i}", fn=_count_units, args=(i,)) for i in range(2)]
        results = run_tasks(tasks, workers=2, registry=registry)
        assert results == {"t0": 0, "t1": 1}
        assert registry.counter("test.parallel_units").value == 0

    def test_worker_spans_reexported_in_parent(self):
        tracer = default_tracer()
        exporter = InMemorySpanExporter()
        tracer.enable(exporter)
        try:
            tasks = [
                TaskSpec(key=f"t{i}", fn=_spanned, args=(i,)) for i in range(3)
            ]
            results = run_tasks(tasks, workers=2, registry=_registry())
            assert results == {"t0": 0, "t1": 1, "t2": 2}
            names = [r["name"] for r in exporter.records]
            assert names.count("parallel.test_span") == 3
        finally:
            tracer.disable()
            tracer.exporter = None


@pytest.fixture(scope="module")
def small_sim():
    config = ScenarioConfig(sim_time_s=40.0, seed=11).with_density(20)
    return HighwaySimulator(config, recorded_nodes=5).run()


class TestShardedReplayIdentity:
    """The tentpole invariant: parallelism never changes results."""

    @pytest.mark.parametrize("n_workers", [2, 3, 5, 8])
    def test_voiceprint_identical_across_worker_counts(self, small_sim, n_workers):
        threshold = ConstantThreshold(0.05)
        serial = run_voiceprint(small_sim, threshold, workers=1)
        parallel = run_voiceprint(small_sim, threshold, workers=n_workers)
        assert parallel == serial

    def test_voiceprint_identical_across_seeds(self):
        threshold = ConstantThreshold(0.05)
        for seed in (1, 2):
            config = ScenarioConfig(sim_time_s=30.0, seed=seed).with_density(15)
            result = HighwaySimulator(config, recorded_nodes=4).run()
            assert run_voiceprint(result, threshold, workers=2) == run_voiceprint(
                result, threshold, workers=1
            )

    def test_cpvsad_identical(self, small_sim):
        config = small_sim.config
        detector = CpvsadDetector(
            assumed_budget=LinkBudget(
                tx_power_dbm=sum(config.tx_power_range_dbm) / 2.0
            ),
            assumed_model=DualSlopeModel(environment(config.environment)),
            config=CpvsadConfig(),
        )
        serial = run_cpvsad(small_sim, detector, workers=1)
        parallel = run_cpvsad(small_sim, detector, workers=3)
        assert parallel == serial

    def test_worker_killed_mid_shard_still_identical(
        self, small_sim, monkeypatch, tmp_path
    ):
        """Fault injection: the first shard attempt dies mid-task; the
        retry must still converge on the exact serial outcome list."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("sabotage closure needs the fork start method")
        import repro.eval.parallel as parallel_mod

        threshold = ConstantThreshold(0.05)
        serial = run_voiceprint(small_sim, threshold, workers=1)

        original = parallel_mod._voiceprint_shard
        # Cross-process first-attempt marker: under fork every retry
        # inherits a fresh copy of parent memory, so in-memory flags
        # reset — the filesystem is the only shared state.
        flag_path = str(tmp_path / "kill.marker")

        def killer(verifiers, result, threshold, detector_config):
            if not os.path.exists(flag_path):
                with open(flag_path, "w", encoding="utf-8") as handle:
                    handle.write("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return original(verifiers, result, threshold, detector_config)

        monkeypatch.setattr(parallel_mod, "_voiceprint_shard", killer)
        parallel = run_voiceprint(small_sim, threshold, workers=2)
        assert os.path.exists(flag_path)  # the sabotage actually fired
        assert parallel == serial


class TestAuditShardMerge:
    """Worker audit shards fold into the parent's (disk-backed) log."""

    def _run_audited(self, small_sim, workers, out=None):
        from repro.obs import audit

        audit.start_default(out=out)
        try:
            run_voiceprint(small_sim, ConstantThreshold(0.05), workers=workers)
        finally:
            log = audit.stop_default()
        return log

    def test_parallel_log_matches_serial(self, small_sim, tmp_path):
        serial = self._run_audited(small_sim, workers=1)
        parallel = self._run_audited(
            small_sim, workers=2, out=str(tmp_path / "audit.jsonl")
        )
        assert parallel.detections == serial.detections > 0
        assert parallel.pairs_recorded == serial.pairs_recorded > 0

        def keyed(log):
            return {
                (b["observer"], b["period"]): [
                    (r["a"], r["b"], r["raw_distance"], r["margin"])
                    for r in b["pairs"]
                ]
                for b in log.bundles
            }

        assert keyed(parallel) == keyed(serial)
        # Observer/period context survives the worker boundary, and the
        # parent's stream persisted every worker bundle as a JSON line.
        assert all(key[0] is not None for key in keyed(parallel))
        import json

        lines = open(parallel.path, encoding="utf-8").read().splitlines()
        assert len(lines) == parallel.detections
        assert all(json.loads(line)["type"] == "detection" for line in lines)

    def test_no_audit_means_no_shard_payload(self, small_sim):
        from repro.obs import audit

        assert audit.default_audit_log() is None
        run_voiceprint(small_sim, ConstantThreshold(0.05), workers=2)
        assert audit.default_audit_log() is None
