"""Tests for repro.serve — QoS primitives, stream sources, the service.

The acceptance property is the one the module exists for: the sharded,
threaded service must publish DetectionReports **byte-identical** to a
serial batch replay of the same per-observer beacon stream (the
paper's detector is per-verifier-independent, so sharding by observer
must be a pure parallelisation, never a behavioural change).
"""

import io
import json
import threading
import time
from collections import defaultdict

import pytest

from repro.core.pipeline import OnlineVoiceprint
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    BeaconEvent,
    BoundedQueue,
    DetectionService,
    ReportBus,
    ServiceConfig,
    read_jsonl,
    synthetic_fleet,
)


# ----------------------------------------------------------------------
# QoS primitives
# ----------------------------------------------------------------------
class TestBoundedQueue:
    def test_fifo(self):
        queue = BoundedQueue(depth=4)
        for i in range(3):
            assert queue.put(i)
        assert [queue.get(), queue.get(), queue.get()] == [0, 1, 2]

    def test_shed_drops_incoming_when_full(self):
        queue = BoundedQueue(depth=2, policy="shed")
        assert queue.put("a") and queue.put("b")
        assert not queue.put("c")
        assert queue.get() == "a"  # the oldest survived; "c" was shed

    def test_block_times_out_when_full(self):
        queue = BoundedQueue(depth=1, policy="block")
        assert queue.put("a")
        start = time.monotonic()
        assert not queue.put("b", timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_block_unblocks_on_consume(self):
        queue = BoundedQueue(depth=1, policy="block")
        queue.put("a")
        got = []

        def producer():
            got.append(queue.put("b", timeout=5.0))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert queue.get() == "a"
        thread.join(timeout=5.0)
        assert got == [True]

    def test_close_refuses_puts_but_drains(self):
        queue = BoundedQueue(depth=4)
        queue.put("a")
        queue.close()
        assert not queue.put("b")
        assert queue.get() == "a"
        assert queue.get() is None  # closed and empty: no blocking

    def test_close_wakes_blocked_producer(self):
        queue = BoundedQueue(depth=1, policy="block")
        queue.put("a")
        results = []

        def producer():
            results.append(queue.put("b", timeout=10.0))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [False]

    def test_clear_discards(self):
        queue = BoundedQueue(depth=4)
        queue.put("a")
        queue.put("b")
        assert queue.clear() == 2
        assert len(queue) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(depth=0)
        with pytest.raises(ValueError):
            BoundedQueue(depth=1, policy="teleport")


class TestReportBus:
    def test_fan_out_reaches_every_subscriber(self):
        bus = ReportBus(MetricsRegistry())
        a = bus.subscribe("a")
        b = bus.subscribe("b")
        bus.publish("r1")
        assert a.drain() == ["r1"]
        assert b.drain() == ["r1"]

    def test_drop_oldest_keeps_freshest(self):
        bus = ReportBus(MetricsRegistry())
        sub = bus.subscribe("slow", depth=2, policy="drop-oldest")
        for i in range(5):
            bus.publish(i)
        assert sub.drain() == [3, 4]
        assert sub.dropped == 3

    def test_drop_newest_keeps_history(self):
        bus = ReportBus(MetricsRegistry())
        sub = bus.subscribe("hist", depth=2, policy="drop-newest")
        for i in range(5):
            bus.publish(i)
        assert sub.drain() == [0, 1]
        assert sub.dropped == 3

    def test_slow_subscriber_does_not_starve_others(self):
        bus = ReportBus(MetricsRegistry())
        slow = bus.subscribe("slow", depth=1)
        fast = bus.subscribe("fast", depth=100)
        for i in range(50):
            bus.publish(i)
        assert len(fast.drain()) == 50
        assert slow.drain() == [49]

    def test_drop_counter_in_registry(self):
        registry = MetricsRegistry()
        registry.enable()
        bus = ReportBus(registry)
        bus.subscribe("slow", depth=1, policy="drop-oldest")
        for i in range(4):
            bus.publish(i)
        assert registry.counter("serve.sub.slow.dropped").value == 3
        assert registry.counter("serve.reports_published").value == 4

    def test_duplicate_names_deduplicated(self):
        bus = ReportBus(MetricsRegistry())
        first = bus.subscribe("cli")
        second = bus.subscribe("cli")
        assert first.name == "cli"
        assert second.name == "cli.2"

    def test_unsubscribe_stops_delivery(self):
        bus = ReportBus(MetricsRegistry())
        sub = bus.subscribe("gone")
        bus.unsubscribe(sub)
        bus.publish("r1")
        assert sub.drain() == []

    def test_get_times_out(self):
        bus = ReportBus(MetricsRegistry())
        sub = bus.subscribe("idle")
        assert sub.get(timeout=0.05) is None


class TestReportBusConcurrentQoS:
    """Per-subscriber QoS under concurrent publishers (the serve
    shards): drop policies must keep their ordering guarantees and the
    ``serve.sub.<name>.dropped`` counters must account for every lost
    report exactly."""

    N_THREADS = 4
    PER_THREAD = 250

    def _hammer(self, bus):
        barrier = threading.Barrier(self.N_THREADS)

        def publisher(worker):
            barrier.wait()
            for i in range(self.PER_THREAD):
                bus.publish((worker, i))

        threads = [
            threading.Thread(target=publisher, args=(worker,))
            for worker in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        return self.N_THREADS * self.PER_THREAD

    def test_depths_and_counters_account_for_every_publish(self):
        registry = MetricsRegistry()
        registry.enable()
        bus = ReportBus(registry)
        oldest = bus.subscribe("oldest", depth=8, policy="drop-oldest")
        newest = bus.subscribe("newest", depth=8, policy="drop-newest")
        deep = bus.subscribe("deep", depth=10_000)
        total = self._hammer(bus)

        assert len(deep.drain()) == total
        assert deep.dropped == 0
        for sub in (oldest, newest):
            kept = sub.drain()
            assert len(kept) == 8
            assert sub.dropped == total - 8
            assert (
                registry.counter(f"serve.sub.{sub.name}.dropped").value
                == total - 8
            )
        assert (
            registry.counter("serve.reports_published").value == total
        )

    def test_drop_oldest_keeps_a_suffix_per_publisher(self):
        bus = ReportBus(MetricsRegistry())
        sub = bus.subscribe("tail", depth=8, policy="drop-oldest")
        self._hammer(bus)
        kept = defaultdict(list)
        for worker, i in sub.drain():
            kept[worker].append(i)
        # Drop-oldest keeps the freshest reports; since each publisher
        # publishes in order, its surviving items are a contiguous
        # suffix of its sequence (in publish order).
        for worker, items in kept.items():
            expected = list(
                range(self.PER_THREAD - len(items), self.PER_THREAD)
            )
            assert items == expected, (worker, items)

    def test_drop_newest_keeps_a_prefix_per_publisher(self):
        bus = ReportBus(MetricsRegistry())
        sub = bus.subscribe("head", depth=8, policy="drop-newest")
        self._hammer(bus)
        kept = defaultdict(list)
        for worker, i in sub.drain():
            kept[worker].append(i)
        # Drop-newest preserves history: once the ring filled, later
        # publishes were refused, so each publisher's surviving items
        # are a contiguous prefix of its sequence.
        for worker, items in kept.items():
            assert items == list(range(len(items))), (worker, items)


# ----------------------------------------------------------------------
# Stream sources
# ----------------------------------------------------------------------
class TestSyntheticFleet:
    def test_deterministic(self):
        a = synthetic_fleet(observers=3, duration_s=5.0, seed=42)
        b = synthetic_fleet(observers=3, duration_s=5.0, seed=42)
        assert a == b

    def test_sorted_by_time(self):
        events = synthetic_fleet(observers=3, duration_s=5.0, seed=1)
        times = [e.t for e in events]
        assert times == sorted(times)

    def test_event_count(self):
        events = synthetic_fleet(
            observers=2, legit=3, sybil=2, duration_s=4.0, beacon_hz=10.0
        )
        assert len(events) == 2 * (3 + 2) * 40

    def test_sybil_zero_disables_attack(self):
        events = synthetic_fleet(observers=1, sybil=0, duration_s=2.0)
        assert not any("ghost" in e.identity for e in events)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_fleet(observers=0)
        with pytest.raises(ValueError):
            synthetic_fleet(beacon_hz=0.0)


class TestReadJsonl:
    def test_roundtrip(self):
        lines = [
            json.dumps(
                {"observer": "v1", "identity": "a", "t": 0.1, "rssi": -70.5}
            ),
            "",
            json.dumps(
                {"observer": "v2", "identity": "b", "t": 0.2, "rssi": -80.0}
            ),
        ]
        events = list(read_jsonl(io.StringIO("\n".join(lines))))
        assert events == [
            BeaconEvent("v1", "a", 0.1, -70.5),
            BeaconEvent("v2", "b", 0.2, -80.0),
        ]

    def test_malformed_line_names_lineno(self):
        source = io.StringIO('{"observer": "v1"}\n')
        with pytest.raises(ValueError, match="line 1"):
            list(read_jsonl(source))

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            list(read_jsonl(io.StringIO("not json\n")))


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
def _replay_batch(events_by_observer, config):
    """Serial reference replay: one OnlineVoiceprint per observer."""
    reports = {}
    for observer, events in events_by_observer.items():
        pipeline = OnlineVoiceprint(
            max_range_m=config.max_range_m,
            detector_config=config.detector_config,
            config=config.pipeline_config,
        )
        out = []
        for event in events:
            report = pipeline.on_beacon(event.identity, event.t, event.rssi_dbm)
            if report is not None:
                out.append(report)
        reports[observer] = out
    return reports


class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.detector_config.pairwise_incremental is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"queue_depth": 0},
            {"poll_interval_s": 0.0},
            {"ingest_policy": "teleport"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestServiceAcceptance:
    def test_verdicts_byte_identical_to_batch(self):
        """Concurrent sharded streams == serial batch replay, exactly."""
        events = synthetic_fleet(
            observers=8, legit=3, sybil=2, duration_s=45.0, seed=11
        )
        config = ServiceConfig(shards=4)
        service = DetectionService(config, registry=MetricsRegistry())
        sub = service.subscribe("test", depth=4096)
        with service:
            for event in events:
                assert service.submit(event)
            assert service.flush(timeout=120.0)
        served = defaultdict(list)
        for report_event in sub.drain():
            served[report_event.observer].append(report_event.report)

        per_observer = defaultdict(list)
        for event in events:
            per_observer[event.observer].append(event)
        batch = _replay_batch(per_observer, config)

        assert set(served) == set(batch)
        for observer in batch:
            assert served[observer] == batch[observer], observer

    def test_sybil_clusters_confirmed_per_observer(self):
        events = synthetic_fleet(
            observers=4, legit=3, sybil=3, duration_s=65.0, seed=3
        )
        service = DetectionService(
            ServiceConfig(shards=2), registry=MetricsRegistry()
        )
        with service:
            for event in events:
                service.submit(event)
            service.flush(timeout=120.0)
        confirmed = service.confirmed()
        for observer, identities in confirmed.items():
            ghosts = {i for i in identities if "ghost" in i}
            assert len(ghosts) >= 2, (observer, identities)
        # every observer's attacker should be caught
        assert len(confirmed) == 4

    def test_report_events_carry_latency_and_seq(self):
        events = synthetic_fleet(observers=2, duration_s=45.0, seed=5)
        service = DetectionService(
            ServiceConfig(shards=2), registry=MetricsRegistry()
        )
        sub = service.subscribe("meta", depth=1024)
        with service:
            for event in events:
                service.submit(event)
            service.flush(timeout=120.0)
        report_events = sub.drain()
        assert report_events
        by_observer = defaultdict(list)
        for report_event in report_events:
            assert report_event.latency_ms >= 0.0
            by_observer[report_event.observer].append(report_event.seq)
        for seqs in by_observer.values():
            assert seqs == list(range(1, len(seqs) + 1))

    def test_observer_routing_is_stable(self):
        assert DetectionService.shard_of("v0001", 4) == DetectionService.shard_of(
            "v0001", 4
        )
        spread = {DetectionService.shard_of(f"v{i:04d}", 4) for i in range(64)}
        assert spread == {0, 1, 2, 3}

    def test_stats_shape(self):
        service = DetectionService(registry=MetricsRegistry())
        with service:
            service.submit(BeaconEvent("v1", "a", 0.0, -70.0))
            service.flush()
        stats = service.stats()
        assert stats["ingested"] == 1
        assert stats["shed"] == 0
        assert stats["observers"] == 1
        assert stats["processed"] == 1


class TestBackpressure:
    def test_shed_policy_counts_overflow_without_deadlock(self):
        # Workers not started: queues fill to depth, the rest sheds.
        config = ServiceConfig(shards=1, queue_depth=8, ingest_policy="shed")
        service = DetectionService(config, registry=MetricsRegistry())
        accepted = sum(
            1
            for i in range(100)
            if service.submit(BeaconEvent("v1", "a", i * 0.1, -70.0))
        )
        assert accepted == 8
        stats = service.stats()
        assert stats["ingested"] == 8
        assert stats["shed"] == 92
        # Late start still drains what was accepted.
        service.start()
        assert service.flush(timeout=30.0)
        service.stop()
        assert service.stats()["processed"] == 8

    def test_shed_counter_lands_in_registry(self):
        registry = MetricsRegistry()
        registry.enable()
        config = ServiceConfig(shards=1, queue_depth=2, ingest_policy="shed")
        service = DetectionService(config, registry=registry)
        for i in range(10):
            service.submit(BeaconEvent("v1", "a", i * 0.1, -70.0))
        assert registry.counter("serve.beacons_shed").value == 8
        assert registry.counter("serve.beacons_ingested").value == 2
        service.start()
        service.stop()

    def test_block_policy_applies_backpressure_then_recovers(self):
        config = ServiceConfig(shards=1, queue_depth=4, ingest_policy="block")
        service = DetectionService(config, registry=MetricsRegistry())
        # Fill the queue before workers exist.
        for i in range(4):
            assert service.submit(BeaconEvent("v1", "a", i * 0.1, -70.0))
        done = threading.Event()

        def producer():
            # This put must block until the service starts consuming.
            service.submit(BeaconEvent("v1", "a", 0.5, -70.0))
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        assert not done.wait(timeout=0.1), "submit should have blocked"
        service.start()
        assert done.wait(timeout=10.0), "submit never unblocked"
        thread.join(timeout=5.0)
        assert service.flush(timeout=30.0)
        service.stop()
        assert service.stats()["ingested"] == 5

    def test_stop_rejects_further_submits(self):
        service = DetectionService(
            ServiceConfig(shards=1), registry=MetricsRegistry()
        )
        service.start()
        service.stop()
        assert not service.submit(BeaconEvent("v1", "a", 0.0, -70.0))


class TestOwnershipIntegration:
    def test_shard_detectors_are_guarded(self):
        """Shard pipelines bind to their worker thread; foreign
        mutation (here: from the test thread) must raise, not corrupt."""
        service = DetectionService(
            ServiceConfig(shards=1), registry=MetricsRegistry()
        )
        with service:
            service.submit(BeaconEvent("v1", "a", 0.0, -70.0))
            service.flush()
            [shard] = service._shards
            detector = shard.pipelines["v1"].detector
            with pytest.raises(RuntimeError, match="single-writer"):
                detector.observe("a", 1.0, -70.0)

    def test_audit_identity_stamped_per_observer(self):
        service = DetectionService(
            ServiceConfig(shards=2), registry=MetricsRegistry()
        )
        with service:
            service.submit(BeaconEvent("v1", "a", 0.0, -70.0))
            service.submit(BeaconEvent("v2", "a", 0.0, -70.0))
            service.flush()
            detectors = {
                observer: pipeline.detector.audit_identity
                for shard in service._shards
                for observer, pipeline in shard.pipelines.items()
            }
        assert detectors == {"v1": "v1", "v2": "v2"}
