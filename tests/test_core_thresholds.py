"""Unit tests for repro.core.thresholds and confirmation."""

import pytest

from repro.core.confirmation import MultiPeriodConfirmer
from repro.core.detector import DetectionReport
from repro.core.lda import DecisionLine
from repro.core.thresholds import (
    PAPER_FIELD_THRESHOLD,
    PAPER_INTERCEPT,
    PAPER_SLOPE,
    ConstantThreshold,
    LinearThreshold,
)


class TestLinearThreshold:
    def test_paper_defaults(self):
        threshold = LinearThreshold()
        assert threshold.k == PAPER_SLOPE
        assert threshold.b == PAPER_INTERCEPT
        assert threshold.threshold_at(10.0) == pytest.approx(0.0537)

    def test_is_sybil_pair(self):
        threshold = LinearThreshold(k=0.001, b=0.05)
        assert threshold.is_sybil_pair(50.0, 0.09)
        assert not threshold.is_sybil_pair(50.0, 0.11)

    def test_from_decision_line(self):
        line = DecisionLine(k=0.002, b=0.01)
        threshold = LinearThreshold.from_decision_line(line)
        assert threshold.k == 0.002
        assert threshold.b == 0.01

    def test_rejects_negative_density(self):
        with pytest.raises(ValueError):
            LinearThreshold().threshold_at(-5.0)


class TestConstantThreshold:
    def test_field_test_default(self):
        assert ConstantThreshold().value == PAPER_FIELD_THRESHOLD

    def test_density_independent(self):
        threshold = ConstantThreshold(0.1)
        assert threshold.threshold_at(0.0) == threshold.threshold_at(1000.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantThreshold(-0.1)

    def test_rejects_negative_density(self):
        with pytest.raises(ValueError):
            ConstantThreshold(0.1).threshold_at(-1.0)


def _report(flagged):
    return DetectionReport(
        timestamp=0.0,
        density=10.0,
        threshold=0.05,
        raw_distances={},
        distances={},
        sybil_pairs=(),
        sybil_ids=frozenset(flagged),
        compared_ids=(),
        skipped_ids=(),
    )


class TestMultiPeriodConfirmer:
    def test_majority_default(self):
        confirmer = MultiPeriodConfirmer(window=3)
        assert confirmer.min_flags == 2

    def test_persistent_id_confirmed(self):
        confirmer = MultiPeriodConfirmer(window=3)
        confirmer.update(_report({"sybil"}))
        confirmed = confirmer.update(_report({"sybil"}))
        assert "sybil" in confirmed

    def test_transient_id_pruned(self):
        confirmer = MultiPeriodConfirmer(window=3)
        confirmer.update(_report({"innocent"}))
        confirmed = confirmer.update(_report(set()))
        assert "innocent" not in confirmed

    def test_sliding_window_forgets(self):
        confirmer = MultiPeriodConfirmer(window=2, min_flags=2)
        confirmer.update(_report({"x"}))
        confirmer.update(_report({"x"}))
        assert "x" in confirmer.confirmed()
        confirmer.update(_report(set()))
        assert "x" not in confirmer.confirmed()

    def test_flag_counts(self):
        confirmer = MultiPeriodConfirmer(window=5, min_flags=3)
        for _ in range(2):
            confirmer.update_ids({"a", "b"})
        confirmer.update_ids({"a"})
        counts = confirmer.flag_counts()
        assert counts["a"] == 3
        assert counts["b"] == 2
        assert confirmer.confirmed() == frozenset({"a"})

    def test_reset(self):
        confirmer = MultiPeriodConfirmer(window=2, min_flags=1)
        confirmer.update_ids({"a"})
        confirmer.reset()
        assert confirmer.periods_seen == 0
        assert confirmer.confirmed() == frozenset()

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MultiPeriodConfirmer(window=0)

    def test_rejects_bad_min_flags(self):
        with pytest.raises(ValueError):
            MultiPeriodConfirmer(window=2, min_flags=3)
