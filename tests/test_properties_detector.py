"""Property-based tests on detector-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConstantThreshold, DetectorConfig, VoiceprintDetector
from repro.core.timeseries import RSSITimeSeries
from repro.net.channel import VANETChannel
from repro.radio.dual_slope import DualSlopeModel
from repro.radio.environments import environment
from repro.radio.noise import SpatialNoiseField


def _detector_with_streams(values_list, threshold=0.1):
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(threshold),
        config=DetectorConfig(min_samples=5),
    )
    for index, values in enumerate(values_list):
        detector.load_series(
            RSSITimeSeries.from_values(f"id{index}", values)
        )
    return detector


stream = st.lists(
    st.floats(-95, -40, allow_nan=False, allow_infinity=False),
    min_size=8,
    max_size=40,
)


class TestReportInvariants:
    @given(streams=st.lists(stream, min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_distances_in_unit_interval(self, streams):
        report = _detector_with_streams(streams).detect(density=10.0)
        for value in report.distances.values():
            assert 0.0 <= value <= 1.0

    @given(streams=st.lists(stream, min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_sybil_ids_subset_of_compared(self, streams):
        report = _detector_with_streams(streams).detect(density=10.0)
        assert set(report.sybil_ids) <= set(report.compared_ids)

    @given(streams=st.lists(stream, min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_pairs_cover_all_compared(self, streams):
        report = _detector_with_streams(streams).detect(density=10.0)
        n = len(report.compared_ids)
        assert len(report.distances) == n * (n - 1) // 2

    @given(
        streams=st.lists(stream, min_size=2, max_size=4),
        low=st.floats(0.0, 0.3),
        high=st.floats(0.5, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_threshold_monotone_in_flags(self, streams, low, high):
        """A larger threshold can only flag more pairs."""
        report_low = _detector_with_streams(streams, low).detect(density=10.0)
        report_high = _detector_with_streams(streams, high).detect(density=10.0)
        assert set(report_low.sybil_pairs) <= set(report_high.sybil_pairs)

    @given(streams=st.lists(stream, min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_raw_distances_symmetric_keys(self, streams):
        report = _detector_with_streams(streams).detect(density=10.0)
        for (a, b) in report.raw_distances:
            assert a < b  # canonical ordering, no duplicates

    @given(
        streams=st.lists(stream, min_size=2, max_size=4),
        offset=st.floats(-20, 20, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_power_offset_invariance_property(self, streams, offset):
        """Shifting one stream by a constant changes nothing (Eq. 7)."""
        report_a = _detector_with_streams(streams).detect(density=10.0)
        shifted = [np.asarray(streams[0]) + offset] + [
            np.asarray(s) for s in streams[1:]
        ]
        report_b = _detector_with_streams(shifted).detect(density=10.0)
        for pair, value in report_a.raw_distances.items():
            assert report_b.raw_distances[pair] == pytest.approx(
                value, abs=1e-9
            )


class TestChannelInvariants:
    @given(
        d1=st.floats(5.0, 2000.0),
        d2=st.floats(5.0, 2000.0),
        t=st.floats(0.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_rssi_monotone_in_distance(self, d1, d2, t):
        channel = VANETChannel(
            model=DualSlopeModel(environment("highway")),
            shadowing=None,
            fading=None,
            measurement_noise_db=0.0,
            quantisation_db=0.0,
            rng=np.random.default_rng(0),
        )
        near, far = sorted((d1, d2))
        rssi_near = channel.link_rssi((0, 0), (near, 0), 20.0, 0.0, t)
        rssi_far = channel.link_rssi((0, 0), (far, 0), 20.0, 0.0, t)
        assert rssi_near >= rssi_far - 1e-9

    @given(
        x=st.floats(0.0, 2000.0),
        y=st.floats(-10.0, 10.0),
        t=st.floats(0.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_channel_deterministic_given_geometry(self, x, y, t):
        """Identity-independent physics: two calls with identical
        geometry at identical times agree exactly (the Sybil signature),
        regardless of RNG state, when per-sample noise is off."""
        channel = VANETChannel(
            model=DualSlopeModel(environment("highway")),
            shadowing=SpatialNoiseField(seed=5),
            fading=SpatialNoiseField(
                seed=6, correlation_distance_m=0.5, correlation_time_s=1.0
            ),
            measurement_noise_db=0.0,
            quantisation_db=0.0,
            rng=np.random.default_rng(1),
        )
        rx = (x + 150.0, y)
        a = channel.link_rssi((x, y), rx, 20.0, 0.0, t)
        b = channel.link_rssi((x, y), rx, 20.0, 0.0, t)
        assert a == b
