"""Tests for repro.obs.tsdb — the multi-resolution ring store."""

import io
import json

import pytest

from repro.obs.tsdb import DEFAULT_RESOLUTIONS, TimeSeriesDB


class TestRecordAndQuery:
    def test_single_sample_lands_in_every_resolution(self):
        store = TimeSeriesDB()
        store.record("m", 3.0, t=125.0)
        for step, _cap in DEFAULT_RESOLUTIONS:
            buckets = store.query("m", step_s=step)
            assert len(buckets) == 1
            assert buckets[0].t == (125.0 // step) * step
            assert buckets[0].count == 1
            assert buckets[0].last == 3.0

    def test_consolidation_tuple(self):
        store = TimeSeriesDB(resolutions=[(10.0, 16)])
        for t, value in [(1.0, 5.0), (3.0, -2.0), (9.0, 7.0)]:
            store.record("m", value, t=t)
        (bucket,) = store.query("m", step_s=10.0)
        assert bucket.count == 3
        assert bucket.sum == pytest.approx(10.0)
        assert bucket.min == -2.0
        assert bucket.max == 7.0
        assert bucket.last == 7.0
        assert bucket.mean == pytest.approx(10.0 / 3.0)

    def test_last_follows_sample_time_not_arrival_order(self):
        store = TimeSeriesDB(resolutions=[(10.0, 16)])
        store.record("m", 1.0, t=8.0)
        store.record("m", 2.0, t=4.0)  # late-arriving older sample
        (bucket,) = store.query("m", step_s=10.0)
        assert bucket.last == 1.0
        assert bucket.count == 2

    def test_query_is_time_ordered_and_since_filters(self):
        store = TimeSeriesDB(resolutions=[(1.0, 100)])
        for t in (5.0, 1.0, 3.0):
            store.record("m", t, t=t)
        buckets = store.query("m")
        assert [b.t for b in buckets] == [1.0, 3.0, 5.0]
        assert [b.t for b in store.query("m", since=3.0)] == [3.0, 5.0]

    def test_ring_prunes_oldest_buckets(self):
        store = TimeSeriesDB(resolutions=[(1.0, 3)])
        for t in range(6):
            store.record("m", float(t), t=float(t))
        buckets = store.query("m")
        assert [b.t for b in buckets] == [3.0, 4.0, 5.0]

    def test_coarse_ring_survives_fine_ring_pruning(self):
        store = TimeSeriesDB(resolutions=[(1.0, 2), (10.0, 100)])
        for t in range(20):
            store.record("m", 1.0, t=float(t))
        assert len(store.query("m", step_s=1.0)) == 2
        coarse = store.query("m", step_s=10.0)
        assert len(coarse) == 2
        assert sum(b.count for b in coarse) == 20

    def test_non_finite_samples_are_dropped(self):
        store = TimeSeriesDB()
        store.record("m", float("nan"), t=1.0)
        store.record("m", float("inf"), t=2.0)
        assert store.query("m") == []
        assert store.samples == 0

    def test_unknown_resolution_raises(self):
        store = TimeSeriesDB()
        with pytest.raises(ValueError, match="no 2.5s resolution"):
            store.query("m", step_s=2.5)

    def test_latest(self):
        store = TimeSeriesDB()
        assert store.latest("m") is None
        store.record("m", 1.0, t=1.0)
        store.record("m", 9.0, t=2.0)
        assert store.latest("m") == 9.0

    def test_max_series_cap(self):
        store = TimeSeriesDB(max_series=2)
        store.record("a", 1.0, t=0.0)
        store.record("b", 1.0, t=0.0)
        store.record("c", 1.0, t=0.0)  # beyond the cap: dropped
        store.record("a", 2.0, t=1.0)  # existing series still record
        assert store.series_names() == ["a", "b"]
        assert store.dropped_series == 1
        assert store.latest("a") == 2.0

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            TimeSeriesDB(resolutions=[])
        with pytest.raises(ValueError):
            TimeSeriesDB(resolutions=[(0.0, 10)])
        with pytest.raises(ValueError):
            TimeSeriesDB(resolutions=[(1.0, 0)])
        with pytest.raises(ValueError):
            TimeSeriesDB(max_series=0)


class TestObserveSnapshot:
    def _record(self):
        return {
            "type": "snapshot",
            "counters": {
                "detector.beacons_observed": {
                    "value": 100.0,
                    "delta": 10.0,
                    "rate": 10.0,
                },
                "no_rate_yet": {"value": 5.0, "delta": 5.0},
            },
            "gauges": {"health.flagged_pair_rate": 0.25, "unset": None},
            "histograms": {
                "detector.detect_ms": {
                    "count": 12,
                    "sum": 60.0,
                    "p50": 4.0,
                    "p99": 9.0,
                    "count_delta": 4,
                    "sum_delta": 20.0,
                },
                "idle.hist": {
                    "count": 3,
                    "sum": 3.0,
                    "p50": 1.0,
                    "p99": 1.0,
                    "count_delta": 0,
                    "sum_delta": 0.0,
                },
            },
        }

    def test_derived_series(self):
        store = TimeSeriesDB()
        store.observe_snapshot(self._record(), t=42.0)
        assert store.latest("rate.detector.beacons_observed") == 10.0
        assert store.latest("health.flagged_pair_rate") == 0.25
        assert store.latest("detector.detect_ms.tick_mean") == 5.0
        assert store.latest("detector.detect_ms.p50") == 4.0
        assert store.latest("detector.detect_ms.p99") == 9.0
        # No rate -> no rate series; unset gauge -> no series; no new
        # histogram samples -> no tick_mean.
        assert store.latest("rate.no_rate_yet") is None
        assert store.latest("unset") is None
        assert store.latest("idle.hist.tick_mean") is None
        assert store.latest("idle.hist.p50") == 1.0


class TestSnapshotMerge:
    def test_round_trip_parity(self):
        store = TimeSeriesDB()
        for t in range(25):
            store.record("m", float(t), t=float(t))
            store.record("n", -float(t), t=float(t) / 2.0)
        clone = TimeSeriesDB()
        clone.merge(store.snapshot())
        assert clone.snapshot() == store.snapshot()

    def test_merge_folds_counts_exactly(self):
        a, b = TimeSeriesDB(), TimeSeriesDB()
        a.record("m", 1.0, t=5.0)
        b.record("m", 3.0, t=5.5)  # same 1s/10s/60s buckets
        a.merge(b.snapshot())
        (bucket,) = a.query("m", step_s=10.0)
        assert bucket.count == 2
        assert bucket.sum == 4.0
        assert bucket.min == 1.0
        assert bucket.max == 3.0
        assert bucket.last == 3.0
        assert a.samples == 2

    def test_out_of_order_worker_merge_cannot_clobber_newer_last(self):
        parent, worker = TimeSeriesDB(), TimeSeriesDB()
        parent.record("m", 9.0, t=8.0)
        worker.record("m", 4.0, t=3.0)  # slow worker ships older tick
        parent.merge(worker.snapshot())
        (bucket,) = parent.query("m", step_s=10.0)
        assert bucket.last == 9.0  # newer parent sample wins
        assert bucket.min == 4.0  # but the worker's data is folded in

    def test_merge_respects_ring_capacity(self):
        a = TimeSeriesDB(resolutions=[(1.0, 3)])
        b = TimeSeriesDB(resolutions=[(1.0, 3)])
        for t in range(3):
            a.record("m", 1.0, t=float(t))
        for t in range(10, 14):
            b.record("m", 1.0, t=float(t))
        a.merge(b.snapshot())
        assert [bucket.t for bucket in a.query("m")] == [11.0, 12.0, 13.0]

    def test_merge_rejects_version_and_resolution_mismatch(self):
        store = TimeSeriesDB()
        with pytest.raises(ValueError, match="version"):
            store.merge({"version": 99})
        other = TimeSeriesDB(resolutions=[(5.0, 10)])
        with pytest.raises(ValueError, match="resolution mismatch"):
            store.merge(other.snapshot())

    def test_merge_honours_max_series(self):
        small = TimeSeriesDB(max_series=1)
        small.record("a", 1.0, t=0.0)
        other = TimeSeriesDB(max_series=1)
        other.record("b", 1.0, t=0.0)
        snapshot = dict(other.snapshot(), resolutions=[
            list(pair) for pair in small.resolutions
        ])
        small.merge(snapshot)
        assert small.series_names() == ["a"]
        assert small.dropped_series == 1


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        store = TimeSeriesDB()
        for t in range(30):
            store.record("m", float(t) ** 0.5, t=float(t))
        path = tmp_path / "run.tsdb.jsonl"
        n_series = store.dump_jsonl(str(path))
        assert n_series == 1
        loaded = TimeSeriesDB.load_jsonl(str(path))
        assert loaded.snapshot() == store.snapshot()

    def test_dump_to_stream_and_header_shape(self):
        store = TimeSeriesDB()
        store.record("m", 1.0, t=0.0)
        buffer = io.StringIO()
        store.dump_jsonl(buffer)
        lines = buffer.getvalue().strip().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "tsdb"
        assert header["version"] == TimeSeriesDB.SNAPSHOT_VERSION
        assert all(
            json.loads(line)["type"] == "series" for line in lines[1:]
        )

    def test_load_rejects_non_tsdb_input(self, tmp_path):
        path = tmp_path / "not_tsdb.jsonl"
        path.write_text('{"type": "snapshot"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a tsdb dump"):
            TimeSeriesDB.load_jsonl(str(path))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            TimeSeriesDB.load_jsonl(str(empty))

    def test_payload_round_trip_keeps_finest_resolution(self):
        store = TimeSeriesDB()
        for t in range(12):
            store.record("m", float(t), t=float(t))
        rebuilt = TimeSeriesDB.from_payload(store.to_payload())
        assert [b.last for b in rebuilt.query("m")] == [
            b.last for b in store.query("m")
        ]
        assert rebuilt.samples == store.samples
