"""Unit tests for the mobility substrate."""

import math

import numpy as np
import pytest

from repro.mobility.epoch_model import EpochMobilityModel, generate_highway_trajectory
from repro.mobility.highway import HighwayGeometry, LanePosition
from repro.mobility.routes import (
    ConvoyLayout,
    RouteSpec,
    build_convoy,
    campus_route,
    highway_route,
    polyline_route,
    route_for_environment,
    rural_route,
    urban_route,
)
from repro.mobility.trace import PiecewiseLinearTrajectory, Waypoint, distance_between


class TestWaypoint:
    def test_xy(self):
        assert Waypoint(0.0, 1.0, 2.0).xy == (1.0, 2.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Waypoint(float("nan"), 0.0, 0.0)


class TestTrajectory:
    def _traj(self):
        return PiecewiseLinearTrajectory(
            [Waypoint(0.0, 0.0, 0.0), Waypoint(10.0, 100.0, 0.0), Waypoint(20.0, 100.0, 50.0)]
        )

    def test_interpolation(self):
        traj = self._traj()
        assert traj.position(5.0) == (50.0, 0.0)
        assert traj.position(15.0) == (100.0, 25.0)

    def test_clamping_outside_span(self):
        traj = self._traj()
        assert traj.position(-5.0) == (0.0, 0.0)
        assert traj.position(99.0) == (100.0, 50.0)

    def test_velocity_and_speed(self):
        traj = self._traj()
        assert traj.velocity(5.0) == (10.0, 0.0)
        assert traj.speed(15.0) == pytest.approx(5.0)
        assert traj.speed(99.0) == 0.0

    def test_heading(self):
        traj = self._traj()
        assert traj.heading(5.0) == pytest.approx(0.0)
        assert traj.heading(15.0) == pytest.approx(math.pi / 2)

    def test_path_length(self):
        assert self._traj().path_length() == pytest.approx(150.0)

    def test_shifted(self):
        shifted = self._traj().shifted(dy=3.0)
        assert shifted.position(5.0) == (50.0, 3.0)

    def test_time_shifted(self):
        delayed = self._traj().time_shifted(2.0)
        assert delayed.position(7.0) == self._traj().position(5.0)

    def test_sample_positions_shape(self):
        assert self._traj().sample_positions([0, 5, 10]).shape == (3, 2)

    def test_requires_increasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinearTrajectory(
                [Waypoint(1.0, 0, 0), Waypoint(1.0, 1, 1)]
            )

    def test_requires_waypoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinearTrajectory([])

    def test_distance_between(self):
        a = self._traj()
        b = a.shifted(dy=30.0)
        assert distance_between(a, b, 5.0) == pytest.approx(30.0)


class TestHighwayGeometry:
    def test_table_v_defaults(self):
        geometry = HighwayGeometry()
        assert geometry.length_m == 2000.0
        assert geometry.total_lanes == 4
        assert geometry.lane_width_m == 3.6

    def test_direction_of_lane(self):
        geometry = HighwayGeometry()
        assert geometry.direction_of_lane(0) == 1
        assert geometry.direction_of_lane(1) == 1
        assert geometry.direction_of_lane(2) == -1
        assert geometry.direction_of_lane(3) == -1

    def test_lane_centres_mirror(self):
        geometry = HighwayGeometry()
        assert geometry.lane_center_y(0) == pytest.approx(1.8)
        assert geometry.lane_center_y(2) == pytest.approx(-1.8)

    def test_advance_simple(self):
        geometry = HighwayGeometry()
        out = geometry.advance(LanePosition(100.0, 0), 50.0)
        assert out.x == 150.0 and out.lane == 0

    def test_advance_westbound(self):
        geometry = HighwayGeometry()
        out = geometry.advance(LanePosition(100.0, 2), 50.0)
        assert out.x == 50.0 and out.lane == 2

    def test_wrap_at_east_end(self):
        geometry = HighwayGeometry()
        out = geometry.advance(LanePosition(1990.0, 0), 30.0)
        assert out.lane == 2  # re-entered westbound
        assert out.x == pytest.approx(1980.0)

    def test_wrap_at_west_end(self):
        geometry = HighwayGeometry()
        out = geometry.advance(LanePosition(10.0, 3), 30.0)
        assert out.lane == 1
        assert out.x == pytest.approx(20.0)

    def test_double_wrap(self):
        geometry = HighwayGeometry(length_m=100.0)
        out = geometry.advance(LanePosition(50.0, 0), 230.0)
        # 50 to east end, 100 back west, 80 east again.
        assert out.lane == 0
        assert out.x == pytest.approx(80.0)

    def test_invalid_lane_rejected(self):
        with pytest.raises(ValueError):
            HighwayGeometry().direction_of_lane(7)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            HighwayGeometry().advance(LanePosition(0.0, 0), -1.0)


class TestEpochMobility:
    def test_table_v_defaults(self):
        model = EpochMobilityModel()
        assert model.epoch_rate == 0.2
        assert model.mean_speed == 25.0
        assert model.speed_std == 5.0

    def test_trajectory_spans_duration(self):
        rng = np.random.default_rng(0)
        geometry = HighwayGeometry()
        traj = generate_highway_trajectory(
            geometry, LanePosition(500.0, 0), 60.0, rng
        )
        assert traj.start_time == 0.0
        assert traj.end_time == pytest.approx(60.0)

    def test_positions_stay_on_road(self):
        rng = np.random.default_rng(1)
        geometry = HighwayGeometry()
        traj = generate_highway_trajectory(
            geometry, LanePosition(1900.0, 0), 120.0, rng
        )
        for t in np.linspace(0, 120, 200):
            x, y = traj.position(float(t))
            assert -0.5 <= x <= geometry.length_m + 0.5
            assert abs(y) <= geometry.lanes_per_direction * geometry.lane_width_m

    def test_average_speed_near_mean(self):
        rng = np.random.default_rng(2)
        geometry = HighwayGeometry(length_m=100000.0)  # no wrap
        traj = generate_highway_trajectory(
            geometry, LanePosition(0.0, 0), 200.0, rng
        )
        assert traj.path_length() / 200.0 == pytest.approx(25.0, rel=0.2)

    def test_deterministic_for_seed(self):
        geometry = HighwayGeometry()
        t1 = generate_highway_trajectory(
            geometry, LanePosition(100.0, 1), 30.0, np.random.default_rng(5)
        )
        t2 = generate_highway_trajectory(
            geometry, LanePosition(100.0, 1), 30.0, np.random.default_rng(5)
        )
        assert t1.position(17.3) == t2.position(17.3)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            generate_highway_trajectory(
                HighwayGeometry(), LanePosition(0.0, 0), 0.0, np.random.default_rng(0)
            )

    def test_model_validation(self):
        with pytest.raises(ValueError):
            EpochMobilityModel(epoch_rate=0.0)
        with pytest.raises(ValueError):
            EpochMobilityModel(speed_std=-1.0)


class TestRoutes:
    def test_campus_route_loops(self):
        route = campus_route(600.0)
        assert route.end_time >= 599.0
        # Loop: returns near the start area repeatedly.
        assert route.path_length() > 1000.0

    def test_urban_route_has_stops(self):
        route = urban_route(300.0)
        speeds = [route.speed(t) for t in np.linspace(1, 299, 400)]
        assert min(speeds) == 0.0  # red light
        assert max(speeds) > 8.0

    def test_highway_route_constant_speed(self):
        route = highway_route(100.0)
        speeds = {round(route.speed(t), 3) for t in (10.0, 50.0, 90.0)}
        assert speeds == {28.0}

    def test_rural_route_runs(self):
        route = rural_route(200.0)
        assert route.path_length() > 1000.0

    def test_route_for_environment_dispatch(self):
        for name in ("campus", "rural", "urban", "highway"):
            assert route_for_environment(name, 60.0).end_time >= 59.0
        with pytest.raises(KeyError):
            route_for_environment("moon", 60.0)

    def test_polyline_route_validation(self):
        with pytest.raises(ValueError):
            RouteSpec(corners=((0.0, 0.0),), speed_mps=5.0)
        with pytest.raises(ValueError):
            RouteSpec(corners=((0.0, 0.0), (1.0, 0.0)), speed_mps=0.0)
        with pytest.raises(ValueError):
            RouteSpec(
                corners=((0.0, 0.0), (1.0, 0.0)), speed_mps=5.0, stops=((7, 5.0),)
            )

    def test_polyline_route_bad_duration(self):
        spec = RouteSpec(corners=((0.0, 0.0), (10.0, 0.0)), speed_mps=5.0)
        with pytest.raises(ValueError):
            polyline_route(spec, 0.0)


class TestConvoy:
    def test_convoy_members(self):
        convoy = build_convoy(highway_route(100.0))
        assert set(convoy) == {"normal1", "malicious", "normal2", "normal3"}

    def test_side_by_side_distance(self):
        layout = ConvoyLayout(side_offset_m=3.0, side_jitter_s=0.0)
        convoy = build_convoy(highway_route(100.0), layout)
        d = distance_between(convoy["malicious"], convoy["normal2"], 50.0)
        assert d == pytest.approx(3.0, abs=0.1)

    def test_lead_is_ahead(self):
        convoy = build_convoy(highway_route(100.0))
        # normal1 (time-shifted earlier) is further along the +x route.
        assert convoy["normal1"].position(50.0)[0] > convoy["malicious"].position(50.0)[0]

    def test_trail_is_behind(self):
        convoy = build_convoy(highway_route(100.0))
        assert convoy["normal3"].position(50.0)[0] < convoy["malicious"].position(50.0)[0]

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            ConvoyLayout(lead_gap_s=-1.0)
        with pytest.raises(ValueError):
            ConvoyLayout(side_offset_m=0.0)
