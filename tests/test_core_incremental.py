"""Tests for incremental detection — streaming stats, carries, abandons.

Covers the O(new-beacons) machinery end to end:

* :class:`repro.core.normalization.RunningStats` /
  :class:`StreamingWindowStats` — property-tested against batch
  ``np.mean``/``np.std`` over the same window, plus the *exact*
  ``divisor() == 0.0`` constant-window sentinel the audit schema
  relies on;
* :meth:`PairwiseEngine.compare_incremental` — flag sets byte-identical
  to the exact pairwise loop on sliding-window recheck sequences (both
  threshold modes, a spread of cutoffs), carried verdicts with
  ``incremental-carry`` provenance, envelope slide-vs-rebuild
  bit-identity, batched bound bit-identity, and the state-hygiene
  guarantees (disjoint windows take the fully exact path, eviction
  bounds hold, ``drop_identity``/``clear_incremental``/``reset`` leave
  no stale carries);
* the detector / experiment / CLI / audit plumbing: sliding
  ``detect()`` flags match exact mode, disjoint periods reproduce
  exact reports byte for byte (the fig11a grid, serial and under
  ``eval.parallel``), ``--pairwise-incremental`` reaches the engine
  defaults, and ``incremental-carry`` audit records replay
  bit-identically.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.fastdtw import dtw_banded_fast
from repro.core.normalization import (
    RunningStats,
    StreamingWindowStats,
    minmax_distances,
)
from repro.core.pairwise import (
    PROV_INCREMENTAL,
    PairwiseEngine,
    dtw_band_upper_bound,
    get_engine_defaults,
    set_engine_defaults,
)
from repro.core.thresholds import ConstantThreshold
from repro.obs.metrics import MetricsRegistry

_values = st.lists(
    st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


def _registry():
    return MetricsRegistry(enabled=True)


def _assert_stats_match(stats, window):
    """Streaming accumulators agree with the batch reduction.

    Tolerances follow the class contract: different float summation
    orders agree to accumulation error, scaled by the window's
    magnitude (cancellation after removals is the worst case).
    """
    scale = float(np.max(np.abs(window))) if len(window) else 0.0
    assert stats.count == len(window)
    assert stats.mean == pytest.approx(
        float(np.mean(window)), rel=1e-9, abs=1e-9 * (1.0 + scale)
    )
    assert stats.variance == pytest.approx(
        float(np.var(window)), rel=1e-6, abs=1e-6 * (1.0 + scale * scale)
    )


class TestRunningStats:
    @given(values=_values)
    @settings(max_examples=100, deadline=None)
    def test_add_only_matches_batch(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        _assert_stats_match(stats, values)

    @given(values=_values, window=st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_sliding_window_matches_batch(self, values, window):
        stats = RunningStats()
        for index, value in enumerate(values):
            stats.add(value)
            if index >= window:
                stats.remove(values[index - window])
            _assert_stats_match(stats, values[max(0, index - window + 1) : index + 1])

    @given(value=st.floats(-1e6, 1e6, allow_nan=False), count=st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_constant_window_sentinel_is_exact(self, value, count):
        # The audit schema's divisor == 0.0 convention requires *exact*
        # zeros for constant windows, not near-zeros.
        stats = RunningStats()
        for _ in range(count):
            stats.add(value)
        assert stats.m2 == 0.0
        assert stats.std() == 0.0
        assert stats.divisor() == 0.0

    def test_emptied_window_resets_exactly(self):
        stats = RunningStats()
        for value in (3.7, -1.2, 9.9):
            stats.add(value)
        for value in (3.7, -1.2, 9.9):
            stats.remove(value)
        assert (stats.count, stats.mean, stats.m2) == (0, 0.0, 0.0)
        # Refilling with a constant after arbitrary history stays exact.
        stats.add(5.0)
        stats.add(5.0)
        assert stats.divisor() == 0.0

    def test_remove_from_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().remove(1.0)

    def test_divisor_scales_by_sigma_multiplier(self):
        stats = RunningStats()
        for value in (0.0, 2.0):
            stats.add(value)
        assert stats.divisor(sigma_multiplier=3.0) == 3.0 * stats.std()
        assert stats.divisor(sigma_multiplier=1.0) == stats.std()


class TestStreamingWindowStats:
    @given(
        values=st.lists(
            st.floats(-500.0, 500.0, allow_nan=False), min_size=1, max_size=50
        ),
        window_s=st.floats(0.5, 5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_push_advance_matches_batch(self, values, window_s):
        times = np.arange(len(values)) * 0.1
        stream = StreamingWindowStats()
        for timestamp, value in zip(times, values):
            stream.push(float(timestamp), value)
            stream.advance(timestamp - window_s)
            window = [
                v for t, v in zip(times, values) if timestamp - window_s <= t <= timestamp
            ]
            assert stream.count == len(window)
            _assert_stats_match(stream._stats, window)

    def test_rejects_decreasing_timestamps(self):
        stream = StreamingWindowStats()
        stream.push(1.0, -70.0)
        with pytest.raises(ValueError):
            stream.push(0.5, -71.0)

    def test_advance_returns_dropped_count_and_empties_exactly(self):
        stream = StreamingWindowStats()
        for index in range(5):
            stream.push(float(index), float(index))
        assert stream.advance(3.0) == 3
        assert stream.count == 2
        assert stream.advance(100.0) == 2
        assert (stream.count, stream.mean, stream.std()) == (0, 0.0, 0.0)

    def test_constant_window_divisor_sentinel(self):
        stream = StreamingWindowStats()
        for index in range(10):
            stream.push(float(index), -70.0)
        assert stream.divisor() == 0.0


# ----------------------------------------------------------------------
# compare_incremental — engine-level contract
# ----------------------------------------------------------------------
def _sliding_scenario(rng, n_samples=400, rate_hz=10.0):
    """Long beacon streams: one attacker trio + independent vehicles."""
    t = np.arange(n_samples) / rate_hz
    shared = (
        -70.0
        + 5.0 * np.sin(2 * np.pi * t / 15.0)
        + np.cumsum(rng.normal(0.0, 0.4, n_samples))
    )
    streams = {}
    for name, offset in (("mal", 0.0), ("syb1", 4.0), ("syb2", -3.0)):
        streams[name] = shared + offset + rng.normal(0.0, 0.3, n_samples)
    for index in range(3):
        streams[f"veh{index}"] = (
            -75.0
            + 6.0 * np.sin(2 * np.pi * t / (9.0 + index) + rng.uniform(0.0, 6.0))
            + np.cumsum(rng.normal(0.0, 0.5, n_samples))
        )
    return t, streams


def _window_inputs(t, streams, start, end):
    """Build compare_incremental inputs for the window [start, end]."""
    mask = (t >= start) & (t <= end)
    arrays, raw, times, keys, params = {}, {}, {}, {}, {}
    for ident, values in streams.items():
        window = np.ascontiguousarray(values[mask])
        mean = float(np.mean(window))
        sigma = float(np.std(window))
        divisor = 0.0 if sigma < 1e-12 else 3.0 * sigma
        arrays[ident] = (
            np.zeros_like(window) if divisor == 0.0 else (window - mean) / divisor
        )
        raw[ident] = window
        times[ident] = np.ascontiguousarray(t[mask])
        keys[ident] = window.tobytes()
        params[ident] = (mean, divisor)
    return arrays, raw, times, keys, params


def _naive_reference(arrays, cutoff, threshold_on, radius=10):
    """Exact distances + flags the incremental engine must reproduce."""
    ids = sorted(arrays)
    distances = {}
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            result = dtw_banded_fast(arrays[a], arrays[b], radius)
            distances[(a, b)] = result.distance / len(result.path)
    judged = (
        minmax_distances(distances) if threshold_on == "normalized" else distances
    )
    return distances, {pair: value <= cutoff for pair, value in judged.items()}


def _incremental_engine(**kwargs):
    kwargs.setdefault("band_radius", 10)
    kwargs.setdefault("incremental", True)
    kwargs.setdefault("cache_size", 64)
    kwargs.setdefault("registry", _registry())
    return PairwiseEngine(**kwargs)


class TestCompareIncremental:
    def test_requires_incremental_banded_mode(self):
        plain = PairwiseEngine(band_radius=10, registry=_registry())
        assert not plain.can_incremental
        with pytest.raises(RuntimeError):
            plain.compare_incremental({}, {}, {}, {}, "", {}, 0.1, "normalized")
        fastdtw_mode = PairwiseEngine(
            band_radius=None, incremental=True, registry=_registry()
        )
        assert not fastdtw_mode.can_incremental

    @pytest.mark.parametrize("threshold_on", ["normalized", "raw"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sliding_flags_identical_to_exact(self, threshold_on, seed):
        rng = np.random.default_rng(seed)
        t, streams = _sliding_scenario(rng)
        engine = _incremental_engine()
        cutoffs = (
            [0.02, 0.1, 0.5] if threshold_on == "normalized" else [0.001, 0.01, 0.1]
        )
        cutoff = cutoffs[seed % len(cutoffs)]
        # A 20 s window sliding by 1 s per recheck — the incremental
        # fast paths (carries, bounds, early abandons) all engage, and
        # every step's flag set must equal the exact loop's.
        for end in np.arange(20.0, 32.0, 1.0):
            arrays, raw, times, keys, params = _window_inputs(
                t, streams, end - 20.0, end
            )
            _, flags, stats = engine.compare_incremental(
                arrays, raw, times, keys, "scale", params, cutoff, threshold_on
            )
            _, want = _naive_reference(arrays, cutoff, threshold_on)
            assert flags == want, f"diverged at window end {end}"
        cumulative = engine.stats
        assert cumulative.envelope_updates > 0  # the slides actually slid

    @pytest.mark.parametrize("threshold_on", ["normalized", "raw"])
    def test_every_cutoff_band_matches_exact(self, threshold_on):
        # One slid window, cutoffs swept across the whole decision
        # range (fresh engine per cutoff so carries don't leak flags).
        rng = np.random.default_rng(7)
        t, streams = _sliding_scenario(rng)
        first = _window_inputs(t, streams, 0.0, 20.0)
        second = _window_inputs(t, streams, 2.0, 22.0)
        raw_ref, _ = _naive_reference(second[0], 0.0, threshold_on)
        values = sorted(raw_ref.values())
        cutoffs = (
            [-0.5, 0.0, 0.05, 0.3, 0.7, 1.0, 2.0]
            if threshold_on == "normalized"
            else [0.0, values[0], values[len(values) // 2], values[-1] * 2.0]
        )
        for cutoff in cutoffs:
            engine = _incremental_engine(cache_size=0)
            for arrays, raw, times, keys, params in (first, second):
                _, flags, _ = engine.compare_incremental(
                    arrays, raw, times, keys, "s", params, cutoff, threshold_on
                )
                _, want = _naive_reference(arrays, cutoff, threshold_on)
                assert flags == want, f"cutoff {cutoff} diverged"

    def test_unchanged_windows_carry_with_provenance(self):
        rng = np.random.default_rng(3)
        t, streams = _sliding_scenario(rng)
        engine = _incremental_engine(cache_size=0)
        inputs = _window_inputs(t, streams, 0.0, 20.0)
        distances1, flags1, stats1 = engine.compare_incremental(
            *inputs[:2], inputs[2], inputs[3], "s", inputs[4], 0.1, "normalized"
        )
        assert stats1.incremental == 0
        engine.record_provenance = True
        distances2, flags2, stats2 = engine.compare_incremental(
            *inputs[:2], inputs[2], inputs[3], "s", inputs[4], 0.1, "normalized"
        )
        # Every pair carries: same distances (bit-identical), no kernel
        # work, and incremental-carry provenance throughout.
        assert distances2 == distances1
        assert flags2 == flags1
        assert stats2.incremental == stats2.pairs
        assert stats2.exact == stats2.abandoned == stats2.cells == 0
        assert engine.last_provenance is not None
        assert {
            record["tag"] for record in engine.last_provenance.values()
        } == {PROV_INCREMENTAL}

    def test_scale_tag_change_invalidates_carries(self):
        rng = np.random.default_rng(4)
        t, streams = _sliding_scenario(rng)
        engine = _incremental_engine(cache_size=0)
        inputs = _window_inputs(t, streams, 0.0, 20.0)
        engine.compare_incremental(
            *inputs[:2], inputs[2], inputs[3], "scale-A", inputs[4], 0.1, "normalized"
        )
        _, _, stats = engine.compare_incremental(
            *inputs[:2], inputs[2], inputs[3], "scale-B", inputs[4], 0.1, "normalized"
        )
        assert stats.incremental == 0

    def test_slid_envelopes_bit_identical_to_rebuild(self):
        rng = np.random.default_rng(5)
        t, streams = _sliding_scenario(rng)
        engine = _incremental_engine()
        for start in (0.0, 1.0, 2.5):
            arrays, raw, times, keys, params = _window_inputs(
                t, streams, start, start + 20.0
            )
            _, _, stats = engine.compare_incremental(
                arrays, raw, times, keys, "s", params, 0.1, "normalized"
            )
            width = 2 * 10 + 1
            from numpy.lib.stride_tricks import sliding_window_view

            for ident, window in raw.items():
                state = engine._identity_states[ident]
                windows = sliding_window_view(window, width)
                assert np.array_equal(state.env_lo, windows.min(axis=1))
                assert np.array_equal(state.env_hi, windows.max(axis=1))
        assert engine.stats.envelope_updates > 0

    def test_disjoint_windows_reproduce_exact_distances(self):
        # Consecutive windows with no timestamp overlap (the fig11a
        # grid shape): every pair must take the fully exact path, so
        # the reported distances — not just the flags — are
        # byte-identical to the naive loop.
        rng = np.random.default_rng(6)
        t, streams = _sliding_scenario(rng, n_samples=450)
        engine = _incremental_engine(cache_size=0)
        for start in (0.0, 21.0, 42.0):
            arrays, raw, times, keys, params = _window_inputs(
                t, streams, start, start + 20.0
            )
            distances, flags, stats = engine.compare_incremental(
                arrays, raw, times, keys, "s", params, 0.1, "normalized"
            )
            want_distances, want_flags = _naive_reference(arrays, 0.1, "normalized")
            assert distances == want_distances
            assert flags == want_flags
            assert stats.abandoned == stats.pruned == 0

    def test_degenerate_identical_series(self):
        base = np.sin(np.linspace(0.0, 6.0, 120))
        t = np.arange(120) * 0.1
        streams = {k: base.copy() for k in "abc"}
        engine = _incremental_engine()
        arrays, raw, times, keys, params = _window_inputs(t, streams, 0.0, 12.0)
        for _ in range(2):  # second call exercises the carry path too
            _, flags, _ = engine.compare_incremental(
                arrays, raw, times, keys, "s", params, 0.0, "normalized"
            )
            assert all(flags.values())  # min-max degenerates to all-zero

    def test_batched_bounds_bit_identical_to_scalar(self):
        from numpy.lib.stride_tricks import sliding_window_view

        rng = np.random.default_rng(8)
        radius, width = 10, 21
        ids = [f"id{i}" for i in range(6)]
        arrays = {ident: rng.normal(size=150) for ident in ids}
        norm_env = {}
        for ident, values in arrays.items():
            windows = sliding_window_view(values, width)
            norm_env[ident] = (windows.min(axis=1), windows.max(axis=1))
        pairs = [(a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]]
        engine = _incremental_engine()
        bounds = {}
        engine._compute_bounds(pairs, arrays, norm_env, radius, bounds)
        for pair in pairs:
            a, b = pair
            n, m = arrays[a].size, arrays[b].size
            lower = engine._incremental_lower_bound(
                arrays[a], arrays[b], norm_env[a], norm_env[b], radius
            )
            upper_cost, _len = dtw_band_upper_bound(arrays[a], arrays[b], radius)
            assert bounds[pair].lower == lower / (n + m - 1)
            assert bounds[pair].upper == upper_cost / max(n, m)
            # Sanity: the sandwich really brackets the pair's distance.
            result = dtw_banded_fast(arrays[a], arrays[b], radius)
            distance = result.distance / len(result.path)
            assert bounds[pair].lower <= distance <= bounds[pair].upper + 1e-12

    def test_drop_identity_forgets_all_touching_state(self):
        rng = np.random.default_rng(9)
        t, streams = _sliding_scenario(rng)
        engine = _incremental_engine()
        inputs = _window_inputs(t, streams, 0.0, 20.0)
        engine.compare_incremental(
            *inputs[:2], inputs[2], inputs[3], "s", inputs[4], 0.1, "normalized"
        )
        assert engine.incremental_state_len > 0
        engine.drop_identity("mal")
        assert "mal" not in engine._identity_states
        assert all("mal" not in pair for pair in engine._pair_states)
        engine.clear_incremental()
        assert engine.incremental_state_len == 0
        assert len(engine._identity_states) == 0

    def test_state_stores_respect_eviction_bounds(self):
        rng = np.random.default_rng(10)
        engine = _incremental_engine()
        engine.MAX_PAIR_STATES = 5
        engine.MAX_IDENTITY_STATES = 3
        t = np.arange(120) * 0.1
        streams = {f"id{i}": rng.normal(size=120) - 70.0 for i in range(6)}
        arrays, raw, times, keys, params = _window_inputs(t, streams, 0.0, 12.0)
        engine.compare_incremental(
            arrays, raw, times, keys, "s", params, 0.1, "normalized"
        )
        assert engine.incremental_state_len <= 5
        assert len(engine._identity_states) <= 3


# ----------------------------------------------------------------------
# Detector / experiment / CLI / audit plumbing
# ----------------------------------------------------------------------
def _feed(detector, t, streams):
    for name, values in streams.items():
        for timestamp, value in zip(t, values):
            detector.observe(name, float(timestamp), float(value))


def _detector(threshold=0.1, registry=None, **config_kwargs):
    return VoiceprintDetector(
        threshold=ConstantThreshold(threshold),
        config=DetectorConfig(**config_kwargs),
        registry=registry or _registry(),
    )


class TestDetectorIncremental:
    @pytest.mark.parametrize("threshold_on", ["normalized", "raw"])
    def test_sliding_detect_flags_match_exact_mode(self, threshold_on):
        rng = np.random.default_rng(41)
        t, streams = _sliding_scenario(rng)
        threshold = 0.1 if threshold_on == "normalized" else 0.01
        exact = _detector(
            threshold, pairwise_engine=True, threshold_on=threshold_on
        )
        incremental = _detector(
            threshold,
            pairwise_engine=True,
            pairwise_incremental=True,
            threshold_on=threshold_on,
        )
        _feed(exact, t, streams)
        _feed(incremental, t, streams)
        for now in np.arange(20.0, 32.0, 1.0):
            want = exact.detect(density=40.0, now=float(now))
            got = incremental.detect(density=40.0, now=float(now))
            assert got.sybil_pairs == want.sybil_pairs
            assert got.sybil_ids == want.sybil_ids

    def test_disjoint_periods_report_bit_identical(self):
        # observation_time == detection spacing: every period's window
        # is fresh, so incremental mode must reproduce the exact
        # report byte for byte — distances and margins included.
        rng = np.random.default_rng(42)
        t, streams = _sliding_scenario(rng, n_samples=450)
        kwargs = {"observation_time": 10.0}
        exact = _detector(pairwise_engine=True, **kwargs)
        incremental = _detector(
            pairwise_engine=True, pairwise_incremental=True, **kwargs
        )
        _feed(exact, t, streams)
        _feed(incremental, t, streams)
        for now in (10.0, 20.5, 31.0, 41.5):
            want = exact.detect(density=40.0, now=now)
            got = incremental.detect(density=40.0, now=now)
            assert got.raw_distances == want.raw_distances
            assert got.distances == want.distances
            assert got.sybil_pairs == want.sybil_pairs

    def test_incremental_counters_reach_registry(self):
        rng = np.random.default_rng(43)
        t, streams = _sliding_scenario(rng)
        registry = _registry()
        detector = _detector(
            registry=registry, pairwise_engine=True, pairwise_incremental=True
        )
        _feed(detector, t, streams)
        detector.detect(density=40.0, now=20.0)
        detector.detect(density=40.0, now=20.0)  # unchanged → carries
        detector.detect(density=40.0, now=22.0)  # slid → envelope updates
        assert registry.counter("detector.pairs_incremental").value > 0
        assert registry.counter("detector.envelope_updates").value > 0

    def test_reset_clears_incremental_state(self):
        rng = np.random.default_rng(44)
        t, streams = _sliding_scenario(rng)
        detector = _detector(pairwise_engine=True, pairwise_incremental=True)
        _feed(detector, t, streams)
        detector.detect(density=40.0, now=20.0)
        engine = detector._engine
        assert engine is not None and engine.incremental_state_len > 0
        detector.reset()
        assert engine.incremental_state_len == 0
        assert len(engine._identity_states) == 0

    def test_config_and_defaults_plumbing(self):
        explicit = _detector(pairwise_engine=True, pairwise_incremental=True)
        assert explicit._engine is not None and explicit._engine.can_incremental
        off = _detector(pairwise_engine=True, pairwise_incremental=False)
        assert off._engine is not None and not off._engine.can_incremental
        previous = set_engine_defaults(incremental=True)
        try:
            inherited = _detector(pairwise_engine=True)
            assert inherited._engine is not None
            assert inherited._engine.can_incremental
        finally:
            set_engine_defaults(incremental=previous.incremental)


class TestFig11aGridIdentity:
    """Incremental vs exact over the fig11a grid, serial and parallel."""

    @staticmethod
    def _rows(detector_config, workers=None):
        from repro.core.lda import DecisionLine
        from repro.eval.experiments import run_fig11
        from repro.sim.scenario import ScenarioConfig

        return run_fig11(
            DecisionLine(k=0.0, b=0.002),
            densities_vhls_per_km=(20,),
            runs_per_density=1,
            base_config=ScenarioConfig(sim_time_s=45.0),
            recorded_nodes=4,
            verifiers_per_run=2,
            detector_config=detector_config,
            seed=901,
            workers=workers,
        )

    def test_serial_rows_identical(self):
        want = self._rows(DetectorConfig(pairwise_engine=True))
        got = self._rows(
            DetectorConfig(pairwise_engine=True, pairwise_incremental=True)
        )
        # Dataclass equality covers DR/FPR floats: the grid's rates —
        # and hence every per-period verdict behind them — match the
        # exact engine bit for bit.
        assert got == want

    def test_parallel_rows_identical_to_serial(self):
        config = DetectorConfig(pairwise_engine=True, pairwise_incremental=True)
        serial = self._rows(config)
        parallel = self._rows(config, workers=2)
        assert parallel == serial


class TestCliIncrementalFlag:
    def test_parser_accepts_on_off(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(
            ["--pairwise-incremental", "on", "list"]
        ).pairwise_incremental == "on"
        assert parser.parse_args(
            ["--pairwise-incremental", "off", "list"]
        ).pairwise_incremental == "off"
        with pytest.raises(SystemExit):
            parser.parse_args(["--pairwise-incremental", "maybe", "list"])

    def test_flag_reaches_engine_defaults_and_restores(self, monkeypatch):
        from repro import cli

        seen = {}

        def probe(args):
            seen["incremental"] = get_engine_defaults().incremental
            return "ok"

        monkeypatch.setitem(cli._HANDLERS, "list", probe)
        before = get_engine_defaults().incremental
        assert cli.main(["--pairwise-incremental", "on", "list"]) == 0
        assert seen["incremental"] is True
        assert get_engine_defaults().incremental == before  # restored


class TestAuditIncrementalCarry:
    def test_carry_records_replay_bit_identically(self):
        from repro.obs.audit import start_default, stop_default, verify_bundle
        from tests.test_obs_audit import make_detector

        start_default()
        try:
            detector = make_detector(pairwise_incremental=True)
            detector.detect(density=40.0, now=20.0)
            detector.detect(density=40.0, now=20.0)  # unchanged → carries
        finally:
            log = stop_default()
        first, second = log.bundles
        assert all(r["status"] == "ok" for r in verify_bundle(first))
        carried = verify_bundle(second)
        assert carried
        # Carried verdicts keep the exact kernel triple, so they stay
        # under the bit-replay obligation — and meet it.
        assert {r["provenance"] for r in carried} == {PROV_INCREMENTAL}
        assert all(r["status"] == "ok" for r in carried)
