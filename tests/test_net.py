"""Unit tests for the DSRC network substrate (messages, radio, MAC, channel)."""

import numpy as np
import pytest

from repro.net.channel import ReceiverState, VANETChannel
from repro.net.mac import (
    CellularCsmaMac,
    CsmaCaMac,
    ScheduledTransmission,
    TransmissionRequest,
)
from repro.net.messages import BEACON_INTERVAL_S, BEACON_RATE_HZ, Beacon
from repro.net.radio import IWCU_OBU42, RadioProfile
from repro.radio.dual_slope import DualSlopeModel
from repro.radio.environments import environment
from repro.radio.noise import SpatialNoiseField


class TestBeacon:
    def test_constants(self):
        assert BEACON_RATE_HZ == 10.0
        assert BEACON_INTERVAL_S == 0.1

    def test_valid_beacon(self):
        beacon = Beacon("v1", 1.0, (10.0, 2.0), speed=25.0)
        assert beacon.size_bytes == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            Beacon("v1", float("nan"), (0.0, 0.0))
        with pytest.raises(ValueError):
            Beacon("v1", 0.0, (float("inf"), 0.0))
        with pytest.raises(ValueError):
            Beacon("v1", 0.0, (0.0, 0.0), size_bytes=0)
        with pytest.raises(ValueError):
            Beacon("v1", 0.0, (0.0, 0.0), sequence=-1)


class TestRadioProfile:
    def test_iwcu_defaults(self):
        assert IWCU_OBU42.rx_sensitivity_dbm == -95.0
        assert IWCU_OBU42.antenna_gain_dbi == 7.0
        assert IWCU_OBU42.data_rate_bps == 3e6

    def test_airtime_500b_at_3mbps(self):
        # 40 us preamble + 4000 bits / 3 Mbps = ~1.373 ms.
        assert IWCU_OBU42.airtime_s(500) == pytest.approx(1.373e-3, rel=1e-3)

    def test_airtime_monotone_in_size(self):
        assert IWCU_OBU42.airtime_s(1000) > IWCU_OBU42.airtime_s(100)

    def test_link_budget_double_gain(self):
        budget = IWCU_OBU42.link_budget()
        assert budget.eirp_dbm == 27.0
        assert budget.rx_gain_dbi == 7.0

    def test_with_tx_power(self):
        assert IWCU_OBU42.with_tx_power(17.0).tx_power_dbm == 17.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioProfile(data_rate_bps=0.0)
        with pytest.raises(ValueError):
            RadioProfile(cw_slots=0)
        with pytest.raises(ValueError):
            IWCU_OBU42.airtime_s(0)


def _request(identity, node, x, offset, eirp=20.0):
    return TransmissionRequest(
        beacon=Beacon(identity, 0.0, (x, 0.0)),
        tx_node=node,
        tx_xy=(x, 0.0),
        eirp_dbm=eirp,
        desired_offset_s=offset,
    )


class TestCsmaCaMac:
    def _mac(self, cs_range=300.0, seed=0):
        return CsmaCaMac(
            profile=RadioProfile(antenna_gain_dbi=0.0),
            carrier_sense_range_m=cs_range,
            rng=np.random.default_rng(seed),
        )

    def test_in_range_transmitters_serialise(self):
        mac = self._mac()
        requests = [
            _request("a", "a", 0.0, 0.01),
            _request("b", "b", 50.0, 0.01),
        ]
        scheduled, dropped = mac.schedule_interval(requests, 0.0, 0.1)
        assert not dropped
        assert not scheduled[0].overlaps(scheduled[1])

    def test_out_of_range_transmitters_overlap(self):
        mac = self._mac(cs_range=100.0)
        requests = [
            _request("a", "a", 0.0, 0.01),
            _request("b", "b", 1000.0, 0.01),
        ]
        scheduled, _ = mac.schedule_interval(requests, 0.0, 0.1)
        assert scheduled[0].overlaps(scheduled[1])

    def test_same_radio_always_serialises(self):
        """Assumption 2: one antenna per vehicle."""
        mac = self._mac(cs_range=1.0)
        requests = [
            _request("mal", "mal", 0.0, 0.01),
            _request("sybil1", "mal", 0.0, 0.01),
            _request("sybil2", "mal", 0.0, 0.01),
        ]
        scheduled, dropped = mac.schedule_interval(requests, 0.0, 0.1)
        assert not dropped
        for i, a in enumerate(scheduled):
            for b in scheduled[i + 1 :]:
                assert not a.overlaps(b)

    def test_saturation_drops(self):
        mac = self._mac()
        # Way more airtime than one interval can hold.
        requests = [
            _request(f"n{i}", f"n{i}", 0.0, 0.099) for i in range(100)
        ]
        scheduled, dropped = mac.schedule_interval(requests, 0.0, 0.1)
        assert dropped
        assert len(scheduled) + len(dropped) == 100

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            self._mac().schedule_interval([], 1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CsmaCaMac(RadioProfile(), 0.0, np.random.default_rng(0))


class TestCellularCsmaMac:
    def _mac(self, cs_range=300.0, seed=0):
        return CellularCsmaMac(
            profile=RadioProfile(antenna_gain_dbi=0.0),
            carrier_sense_range_m=cs_range,
            rng=np.random.default_rng(seed),
        )

    def test_nearby_serialise(self):
        mac = self._mac()
        scheduled, dropped = mac.schedule_interval(
            [_request("a", "a", 0.0, 0.01), _request("b", "b", 10.0, 0.01)],
            0.0,
            0.1,
        )
        assert not dropped
        assert not scheduled[0].overlaps(scheduled[1])

    def test_far_apart_overlap(self):
        mac = self._mac(cs_range=100.0)
        scheduled, _ = mac.schedule_interval(
            [_request("a", "a", 0.0, 0.01), _request("b", "b", 2000.0, 0.01)],
            0.0,
            0.1,
        )
        assert scheduled[0].overlaps(scheduled[1])

    def test_same_radio_serialises(self):
        mac = self._mac(cs_range=100.0)
        scheduled, dropped = mac.schedule_interval(
            [
                _request("mal", "mal", 0.0, 0.05),
                _request("sybil", "mal", 0.0, 0.05),
            ],
            0.0,
            0.1,
        )
        assert not dropped
        assert not scheduled[0].overlaps(scheduled[1])

    def test_saturation_drops(self):
        mac = self._mac()
        requests = [_request(f"n{i}", f"n{i}", 5.0, 0.09) for i in range(100)]
        scheduled, dropped = mac.schedule_interval(requests, 0.0, 0.1)
        assert dropped

    def test_capacity_reasonable(self):
        """One CS region fits ~60-72 beacons per 100 ms at 3 Mbps."""
        mac = self._mac(cs_range=300.0, seed=1)
        requests = [
            _request(f"n{i}", f"n{i}", float(i % 50), i / 1000.0)
            for i in range(80)
        ]
        scheduled, dropped = mac.schedule_interval(requests, 0.0, 0.1)
        assert 50 <= len(scheduled) <= 75


class TestChannel:
    def _channel(self, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        return VANETChannel(
            model=DualSlopeModel(environment("highway")),
            shadowing=SpatialNoiseField(seed=7),
            rng=rng,
            **kwargs,
        )

    def test_rssi_decreases_with_distance(self):
        channel = self._channel()
        near = channel.link_rssi((0, 0), (50, 0), 20.0, 0.0, 0.0, include_noise=False)
        far = channel.link_rssi((0, 0), (500, 0), 20.0, 0.0, 0.0, include_noise=False)
        assert near > far

    def test_quantisation(self):
        channel = self._channel(quantisation_db=1.0)
        value = channel.link_rssi((0, 0), (100, 0), 20.0, 0.0, 3.3)
        assert value == round(value)

    def test_sybil_streams_share_channel(self):
        """Two same-position same-time transmissions: near-identical RSSI
        (only measurement noise and quantisation differ)."""
        channel = self._channel(measurement_noise_db=0.0, quantisation_db=0.0)
        tx = np.array([[0.0, 0.0], [0.0, 0.0]])
        rx = np.array([[200.0, 3.0]])
        rssi = channel.rssi_matrix(
            tx, rx, np.array([20.0, 20.0]), np.array([0.0]), 5.0,
            tx_times=np.array([5.01, 5.02]),
        )
        assert abs(rssi[0, 0] - rssi[1, 0]) < 0.5

    def test_distinct_positions_differ(self):
        channel = self._channel(measurement_noise_db=0.0, quantisation_db=0.0)
        tx = np.array([[0.0, 0.0], [3.0, 0.0]])
        rx = np.array([[200.0, 3.0]])
        rssi = channel.rssi_matrix(
            tx, rx, np.array([20.0, 20.0]), np.array([0.0]), 5.0,
            tx_times=np.array([5.01, 5.02]),
        )
        assert abs(rssi[0, 0] - rssi[1, 0]) > 0.01

    def test_max_range(self):
        channel = self._channel()
        channel.shadowing = None  # range is defined on the mean RSSI
        r = channel.max_range_m(20.0, 0.0, -95.0)
        rssi = channel.link_rssi((0, 0), (r, 0), 20.0, 0.0, 0.0, include_noise=False)
        assert rssi == pytest.approx(-95.0, abs=0.5)

    def test_set_model_changes_predictions(self):
        channel = self._channel()
        before = channel.link_rssi((0, 0), (300, 0), 20.0, 0.0, 0.0, include_noise=False)
        channel.set_model(DualSlopeModel(environment("urban")))
        after = channel.link_rssi((0, 0), (300, 0), 20.0, 0.0, 0.0, include_noise=False)
        assert before != after

    def test_deliver_respects_sensitivity(self):
        channel = self._channel()
        profile = RadioProfile(antenna_gain_dbi=0.0)
        tx = ScheduledTransmission(
            request=_request("far", "far", 0.0, 0.0), start_s=0.0, end_s=0.0014
        )
        receivers = [
            ReceiverState("near", (100.0, 0.0), profile),
            ReceiverState("toofar", (5000.0, 0.0), profile),
        ]
        receptions = channel.deliver([tx], receivers, 0.0)
        receivers_hit = {r.receiver for r in receptions}
        assert "near" in receivers_hit
        assert "toofar" not in receivers_hit

    def test_deliver_half_duplex(self):
        channel = self._channel()
        profile = RadioProfile(antenna_gain_dbi=0.0)
        t1 = ScheduledTransmission(
            request=_request("a", "a", 0.0, 0.0), start_s=0.0, end_s=0.0014
        )
        t2 = ScheduledTransmission(
            request=_request("b", "b", 50.0, 0.0), start_s=0.0005, end_s=0.0019
        )
        receivers = [
            ReceiverState("a", (0.0, 0.0), profile),
            ReceiverState("b", (50.0, 0.0), profile),
            ReceiverState("c", (100.0, 0.0), profile),
        ]
        receptions = channel.deliver([t1, t2], receivers, 0.0)
        # a cannot hear b (overlapping with its own tx) and vice versa.
        got = {(r.receiver, r.identity) for r in receptions}
        assert ("a", "b") not in got
        assert ("b", "a") not in got

    def test_deliver_no_self_reception(self):
        channel = self._channel()
        profile = RadioProfile(antenna_gain_dbi=0.0)
        tx = ScheduledTransmission(
            request=_request("a", "a", 0.0, 0.0), start_s=0.0, end_s=0.0014
        )
        receptions = channel.deliver(
            [tx], [ReceiverState("a", (0.0, 0.0), profile)], 0.0
        )
        assert receptions == []

    def test_hidden_terminal_collision(self):
        """Equal-power overlapping frames at one receiver: SINR ~ 0 dB
        is below the capture threshold, so both frames die."""
        channel = self._channel(
            measurement_noise_db=0.0, quantisation_db=0.0, fading=None,
        )
        channel.shadowing = None
        profile = RadioProfile(antenna_gain_dbi=0.0)
        t1 = ScheduledTransmission(
            request=_request("left", "left", -100.0, 0.0), start_s=0.0, end_s=0.0014
        )
        t2 = ScheduledTransmission(
            request=_request("right", "right", 100.0, 0.0), start_s=0.0005, end_s=0.0019
        )
        receiver = [ReceiverState("mid", (0.0, 0.0), profile)]
        receptions = channel.deliver([t1, t2], receiver, 0.0)
        assert receptions == []

    def test_deliver_empty(self):
        channel = self._channel()
        assert channel.deliver([], [], 0.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            self._channel(fast_fading_sigma_db=-1.0)
        with pytest.raises(ValueError):
            self._channel(measurement_noise_db=-0.1)
        with pytest.raises(ValueError):
            self._channel(quantisation_db=-0.1)


class TestChannelDefaultRng:
    def test_omitted_rng_is_deterministic(self):
        # Regression: the rng fallback used to be an *unseeded*
        # default_rng(), so two identically-built channels measured
        # different noise and ad-hoc runs were unreproducible.
        def build():
            return VANETChannel(model=DualSlopeModel(environment("highway")))

        a, b = build(), build()
        samples_a = [a.link_rssi((0, 0), (100, 0), 20.0, 0.0, t) for t in range(5)]
        samples_b = [b.link_rssi((0, 0), (100, 0), 20.0, 0.0, t) for t in range(5)]
        assert samples_a == samples_b

    def test_explicit_rng_still_wins(self):
        model = DualSlopeModel(environment("highway"))
        seeded = VANETChannel(model=model, rng=np.random.default_rng(123))
        default = VANETChannel(model=model)
        seeded_run = [
            seeded.link_rssi((0, 0), (100, 0), 20.0, 0.0, t) for t in range(5)
        ]
        default_run = [
            default.link_rssi((0, 0), (100, 0), 20.0, 0.0, t) for t in range(5)
        ]
        assert seeded_run != default_run
