"""Tests for repro.obs.health — thresholds, sliding windows, alerts."""

import pytest

from repro.core.detector import DetectionReport
from repro.obs.health import (
    HealthMonitor,
    HealthThresholds,
    default_monitor,
    set_default_monitor,
)
from repro.obs.metrics import MetricsRegistry


def make_report(
    t=100.0, density=40.0, n_pairs=10, n_flagged=0, sybil_ids=()
):
    pairs = [(f"a{i}", f"b{i}") for i in range(n_pairs)]
    distances = {pair: 0.5 for pair in pairs}
    flagged = tuple(pairs[:n_flagged])
    return DetectionReport(
        timestamp=t,
        density=density,
        threshold=0.05,
        raw_distances=distances,
        distances=distances,
        sybil_pairs=flagged,
        sybil_ids=frozenset(sybil_ids)
        or frozenset(x for pair in flagged for x in pair),
        compared_ids=tuple(sorted({x for pair in pairs for x in pair})),
        skipped_ids=(),
    )


class TestHealthThresholds:
    def test_from_spec_aliases(self):
        th = HealthThresholds.from_spec(
            "silence=30,detect_ms=250,flag_rate=0.5,density_drift=0.4,window=5"
        )
        assert th.max_silence_s == 30.0
        assert th.max_detect_ms == 250.0
        assert th.max_flagged_pair_rate == 0.5
        assert th.max_density_drift == 0.4
        assert th.window == 5

    def test_from_spec_full_field_names(self):
        th = HealthThresholds.from_spec("max_silence_s=10")
        assert th.max_silence_s == 10.0

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            HealthThresholds.from_spec("bogus=1")

    def test_from_spec_rejects_bad_value(self):
        with pytest.raises(ValueError):
            HealthThresholds.from_spec("silence=soon")

    def test_from_spec_rejects_missing_equals(self):
        with pytest.raises(ValueError):
            HealthThresholds.from_spec("silence")

    def test_nonpositive_thresholds_rejected(self):
        with pytest.raises(ValueError):
            HealthThresholds(max_silence_s=0.0)
        with pytest.raises(ValueError):
            HealthThresholds(window=0)


class TestStalenessWatchdog:
    def test_beacon_gap_alert_fires_retroactively(self):
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
        )
        monitor.beat(0.0)
        monitor.beat(1.0)
        assert monitor.healthy
        monitor.beat(20.0)  # 19 s of silence just ended
        [alert] = monitor.recent_alerts
        assert alert.kind == "beacon_gap"
        assert alert.value == pytest.approx(19.0)
        assert not monitor.healthy

    def test_check_detects_ongoing_silence(self):
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
        )
        monitor.beat(0.0)
        assert monitor.check(3.0) is None
        alert = monitor.check(30.0)
        assert alert is not None and alert.kind == "silence"

    def test_no_alert_before_first_beacon(self):
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
        )
        assert monitor.check(1000.0) is None

    def test_disabled_without_threshold(self):
        monitor = HealthMonitor(registry=MetricsRegistry())
        monitor.beat(0.0)
        monitor.beat(1e6)
        assert monitor.check(2e6) is None
        assert monitor.healthy


class TestReportSignals:
    def test_latency_alert(self):
        monitor = HealthMonitor(
            HealthThresholds(max_detect_ms=100.0),
            registry=MetricsRegistry(),
        )
        monitor.on_report(make_report(), latency_ms=50.0)
        assert monitor.healthy
        monitor.on_report(make_report(), latency_ms=250.0)
        assert [a.kind for a in monitor.recent_alerts] == ["detect_latency"]

    def test_flagged_pair_rate_alert(self):
        monitor = HealthMonitor(
            HealthThresholds(max_flagged_pair_rate=0.5),
            registry=MetricsRegistry(),
        )
        monitor.on_report(
            make_report(n_pairs=10, n_flagged=2), latency_ms=1.0
        )
        assert monitor.healthy
        monitor.on_report(
            make_report(n_pairs=10, n_flagged=8), latency_ms=1.0
        )
        assert [a.kind for a in monitor.recent_alerts] == [
            "flagged_pair_rate"
        ]

    def test_empty_report_has_zero_flag_rate(self):
        monitor = HealthMonitor(
            HealthThresholds(max_flagged_pair_rate=0.1),
            registry=MetricsRegistry(),
        )
        monitor.on_report(make_report(n_pairs=0), latency_ms=1.0)
        assert monitor.healthy

    def test_density_drift_alert_uses_previous_median(self):
        monitor = HealthMonitor(
            HealthThresholds(max_density_drift=0.5),
            registry=MetricsRegistry(),
        )
        for t, density in ((20.0, 40.0), (40.0, 42.0), (60.0, 38.0)):
            monitor.on_report(make_report(t=t, density=density), 1.0)
        assert monitor.healthy
        monitor.on_report(make_report(t=80.0, density=400.0), 1.0)
        assert [a.kind for a in monitor.recent_alerts] == ["density_drift"]

    def test_window_bounds_history(self):
        monitor = HealthMonitor(
            HealthThresholds(window=3), registry=MetricsRegistry()
        )
        for i in range(10):
            monitor.on_report(make_report(t=float(i)), latency_ms=float(i))
        status = monitor.status()
        assert len(status["window"]["detect_latency_ms"]) == 3
        assert status["reports"] == 10


class TestAlertPlumbing:
    def test_alert_increments_counter_and_fires_hooks(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor(
            HealthThresholds(max_detect_ms=1.0), registry=registry
        )
        seen = []
        monitor.add_hook(seen.append)
        monitor.on_report(make_report(), latency_ms=9.0)
        assert registry.counter("health.alerts").value == 1
        assert monitor.alerts_total == 1
        assert [a.kind for a in seen] == ["detect_latency"]

    def test_alert_emits_structured_warning(self, caplog):
        monitor = HealthMonitor(
            HealthThresholds(max_detect_ms=1.0),
            registry=MetricsRegistry(),
        )
        with caplog.at_level("WARNING", logger="repro.obs.health"):
            monitor.on_report(make_report(), latency_ms=9.0)
        [record] = caplog.records
        assert record.kind == "detect_latency"
        assert record.value == 9.0
        assert record.threshold == 1.0

    def test_status_document_shape(self):
        monitor = HealthMonitor(
            HealthThresholds(max_detect_ms=1.0),
            registry=MetricsRegistry(),
        )
        monitor.beat(5.0)
        monitor.on_report(make_report(), latency_ms=9.0)
        status = monitor.status()
        assert status["status"] == "alert"
        assert status["last_beacon_t"] == 5.0
        [alert] = status["alerts"]
        assert alert["kind"] == "detect_latency"
        assert alert["threshold"] == 1.0


class TestDefaultMonitor:
    def test_default_is_none_and_restorable(self):
        assert default_monitor() is None
        monitor = HealthMonitor(registry=MetricsRegistry())
        previous = set_default_monitor(monitor)
        try:
            assert previous is None
            assert default_monitor() is monitor
        finally:
            set_default_monitor(previous)
        assert default_monitor() is None


class TestClockSources:
    """The clock-source contract (see HealthMonitor docstring).

    Event mode measures gaps between beacon timestamps (replays see
    the trace's silences, not the replay speed's); wall mode measures
    gaps between beat arrival times (a live feed stalling fires even
    if beacon timestamps claim otherwise); watchdog() is always wall.
    """

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError):
            HealthMonitor(registry=MetricsRegistry(), clock="gps")

    def test_status_reports_clock(self):
        monitor = HealthMonitor(registry=MetricsRegistry(), clock="wall")
        assert monitor.status()["clock"] == "wall"

    def test_event_check_requires_explicit_now(self):
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
        )
        monitor.beat(0.0)
        with pytest.raises(ValueError, match="watchdog"):
            monitor.check()

    def test_wall_beat_gap_ignores_event_timestamps(self):
        wall = [100.0]
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
            clock="wall",
            wall_clock=lambda: wall[0],
        )
        # Beacon timestamps jump 1000s apart, but the beats arrive
        # back-to-back in wall time: no alert in wall mode.
        monitor.beat(0.0)
        wall[0] = 100.5
        monitor.beat(1000.0)
        assert monitor.healthy
        # Now the wall stalls between beats while event time barely
        # moves: that IS a gap in wall mode.
        wall[0] = 200.0
        monitor.beat(1000.1)
        [alert] = monitor.recent_alerts
        assert alert.kind == "beacon_gap"
        assert alert.value == pytest.approx(99.5)

    def test_wall_check_defaults_to_wall_clock(self):
        wall = [50.0]
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
            clock="wall",
            wall_clock=lambda: wall[0],
        )
        monitor.beat(0.0)
        wall[0] = 52.0
        assert monitor.check() is None
        wall[0] = 70.0
        alert = monitor.check()
        assert alert is not None and alert.kind == "silence"

    def test_watchdog_is_wall_based_in_event_mode(self):
        wall = [10.0]
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
            clock="event",
            wall_clock=lambda: wall[0],
        )
        # A fast replay: event time races ahead of wall time.  The
        # old (buggy) behaviour compared a wall "now" against event
        # beats and misfired or stayed silent depending on the trace
        # epoch; watchdog() only ever looks at wall beat arrival.
        monitor.beat(100_000.0)
        wall[0] = 11.0
        assert monitor.watchdog() is None
        wall[0] = 60.0
        alert = monitor.watchdog()
        assert alert is not None and alert.kind == "silence"
        assert alert.value == pytest.approx(50.0)

    def test_watchdog_silent_before_first_beat(self):
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=MetricsRegistry(),
        )
        assert monitor.watchdog() is None
