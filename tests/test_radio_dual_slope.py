"""Unit tests for the dual-slope model, environments, inversion, fitting."""

import numpy as np
import pytest

from repro.radio.base import LinkBudget
from repro.radio.dual_slope import DualSlopeModel, DualSlopeParameters
from repro.radio.environments import (
    CAMPUS,
    ENVIRONMENTS,
    RURAL,
    URBAN,
    environment,
    environment_model,
    environment_names,
)
from repro.radio.fitting import fit_dual_slope
from repro.radio.free_space import fspl_db
from repro.radio.inverse import (
    invert_dual_slope,
    invert_free_space,
    invert_log_distance,
    invert_monotone_model,
    invert_two_ray,
)
from repro.radio.shadowing import LogNormalShadowingModel


class TestDualSlopeParameters:
    def test_table_iv_campus_values(self):
        assert CAMPUS.critical_distance_m == 218.0
        assert CAMPUS.gamma1 == 1.66
        assert CAMPUS.gamma2 == 5.53
        assert CAMPUS.sigma1_db == 2.8
        assert CAMPUS.sigma2_db == 3.2

    def test_table_iv_rural_values(self):
        assert (RURAL.critical_distance_m, RURAL.gamma1, RURAL.gamma2) == (
            182.0,
            1.89,
            5.86,
        )

    def test_table_iv_urban_values(self):
        assert (URBAN.critical_distance_m, URBAN.gamma1, URBAN.gamma2) == (
            102.0,
            2.56,
            6.34,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DualSlopeParameters(0.5, 2.0, 5.0, 3.0, 3.0)  # dc <= d0
        with pytest.raises(ValueError):
            DualSlopeParameters(100.0, -1.0, 5.0, 3.0, 3.0)
        with pytest.raises(ValueError):
            DualSlopeParameters(100.0, 2.0, 5.0, -3.0, 3.0)

    def test_with_name(self):
        assert CAMPUS.with_name("x").name == "x"


class TestDualSlopeModel:
    def test_near_regime_slope(self):
        model = DualSlopeModel(CAMPUS)
        got = model.path_loss_db(100.0) - model.path_loss_db(10.0)
        assert got == pytest.approx(10 * CAMPUS.gamma1)

    def test_far_regime_slope(self):
        model = DualSlopeModel(CAMPUS)
        d1, d2 = 300.0, 3000.0
        got = model.path_loss_db(d2) - model.path_loss_db(d1)
        assert got == pytest.approx(10 * CAMPUS.gamma2)

    def test_continuity_at_breakpoint(self):
        model = DualSlopeModel(CAMPUS)
        dc = CAMPUS.critical_distance_m
        assert model.path_loss_db(dc * 0.999) == pytest.approx(
            model.path_loss_db(dc * 1.001), abs=0.1
        )

    def test_reference_is_free_space(self):
        model = DualSlopeModel(CAMPUS)
        assert model.path_loss_db(1.0) == pytest.approx(fspl_db(1.0))

    def test_sigma_by_regime(self):
        model = DualSlopeModel(CAMPUS)
        assert model.sigma_db(50.0) == CAMPUS.sigma1_db
        assert model.sigma_db(500.0) == CAMPUS.sigma2_db

    def test_vectorised_matches_scalar(self):
        model = DualSlopeModel(URBAN)
        distances = np.array([1.0, 50.0, 102.0, 150.0, 1000.0])
        vector = model.path_loss_db_array(distances)
        scalar = [model.path_loss_db(float(d)) for d in distances]
        assert np.allclose(vector, scalar)
        assert np.allclose(
            model.sigma_db_array(distances),
            [model.sigma_db(float(d)) for d in distances],
        )

    def test_sampling_statistics(self):
        model = DualSlopeModel(CAMPUS)
        budget = LinkBudget()
        rng = np.random.default_rng(0)
        samples = [model.sample_rssi(400.0, budget, rng) for _ in range(2000)]
        assert np.std(samples) == pytest.approx(CAMPUS.sigma2_db, abs=0.3)


class TestEnvironments:
    def test_all_four_present(self):
        assert set(environment_names()) == {"campus", "rural", "urban", "highway"}
        assert set(ENVIRONMENTS) == set(environment_names())

    def test_lookup_case_insensitive(self):
        assert environment("Campus") is CAMPUS
        assert environment(" URBAN ") is URBAN

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            environment("orbit")

    def test_environment_model(self):
        model = environment_model("rural")
        assert model.params is RURAL

    def test_urban_breaks_earliest(self):
        # Observation 2: denser obstacles -> shorter breakpoint.
        assert (
            URBAN.critical_distance_m
            < RURAL.critical_distance_m
            < CAMPUS.critical_distance_m
        )

    def test_urban_shadows_hardest(self):
        assert URBAN.sigma2_db > RURAL.sigma2_db > CAMPUS.sigma2_db


class TestInversion:
    BUDGET = LinkBudget(tx_power_dbm=20.0, rx_gain_dbi=7.0)

    def test_free_space_roundtrip(self):
        from repro.radio.free_space import FreeSpaceModel

        model = FreeSpaceModel()
        for d in (10.0, 140.0, 500.0):
            rssi = model.mean_rssi(d, self.BUDGET)
            assert invert_free_space(rssi, self.BUDGET) == pytest.approx(d, rel=1e-6)

    def test_two_ray_roundtrip(self):
        from repro.radio.two_ray import TwoRayGroundModel

        model = TwoRayGroundModel()
        for d in (50.0, 400.0, 1000.0):
            rssi = model.mean_rssi(d, self.BUDGET)
            assert invert_two_ray(rssi, self.BUDGET, model) == pytest.approx(
                d, rel=1e-3
            )

    def test_log_distance_roundtrip(self):
        model = LogNormalShadowingModel(path_loss_exponent=2.4)
        for d in (20.0, 300.0):
            rssi = model.mean_rssi(d, self.BUDGET)
            assert invert_log_distance(rssi, self.BUDGET, model) == pytest.approx(
                d, rel=1e-6
            )

    def test_dual_slope_roundtrip(self):
        model = DualSlopeModel(CAMPUS)
        for d in (15.0, 218.0, 600.0):
            rssi = model.mean_rssi(d, self.BUDGET)
            assert invert_dual_slope(rssi, self.BUDGET, model) == pytest.approx(
                d, rel=1e-4
            )

    def test_observation1_wrong_model_misranges(self):
        """The paper's core point: inverting the wrong model errs badly.

        The paper's hardware measured *over*-estimates (281.5 m for a
        140 m truth); our synthetic campus channel (gamma1 = 1.66 < 2)
        produces *under*-estimates.  Either way the relative error is
        gross, which is what motivates going model-free.
        """
        truth = DualSlopeModel(CAMPUS)
        true_distance = 140.0
        rssi = truth.mean_rssi(true_distance, self.BUDGET)
        fspl_estimate = invert_free_space(rssi, self.BUDGET)
        relative_error = abs(fspl_estimate - true_distance) / true_distance
        assert relative_error > 0.3

    def test_impossible_rssi_raises(self):
        with pytest.raises(ValueError):
            invert_free_space(+50.0, self.BUDGET)

    def test_monotone_inverter_generic(self):
        model = DualSlopeModel(URBAN)
        rssi = model.mean_rssi(333.0, self.BUDGET)
        got = invert_monotone_model(rssi, self.BUDGET, model.path_loss_db)
        assert got == pytest.approx(333.0, abs=0.01)


class TestFitting:
    def test_recovers_generating_parameters(self):
        rng = np.random.default_rng(7)
        budget = LinkBudget(tx_power_dbm=20.0, rx_gain_dbi=7.0)
        model = DualSlopeModel(RURAL)
        distances = np.exp(rng.uniform(np.log(2), np.log(600), size=4000))
        rssi = np.array(
            [model.sample_rssi(float(d), budget, rng) for d in distances]
        )
        fit = fit_dual_slope(distances, rssi, budget)
        assert fit.params.gamma1 == pytest.approx(RURAL.gamma1, abs=0.15)
        assert fit.params.gamma2 == pytest.approx(RURAL.gamma2, abs=0.4)
        assert fit.params.critical_distance_m == pytest.approx(
            RURAL.critical_distance_m, rel=0.25
        )
        assert fit.params.sigma1_db == pytest.approx(RURAL.sigma1_db, abs=0.7)
        assert fit.params.sigma2_db == pytest.approx(RURAL.sigma2_db, abs=0.9)

    def test_requires_enough_samples(self):
        budget = LinkBudget()
        with pytest.raises(ValueError):
            fit_dual_slope([10.0] * 4, [-70.0] * 4, budget)

    def test_requires_matching_shapes(self):
        budget = LinkBudget()
        with pytest.raises(ValueError):
            fit_dual_slope([10.0] * 10, [-70.0] * 9, budget)

    def test_rejects_subreference_distances(self):
        budget = LinkBudget()
        with pytest.raises(ValueError):
            fit_dual_slope(
                [0.5] + [10.0] * 9, [-60.0] * 10, budget, reference_distance_m=1.0
            )
