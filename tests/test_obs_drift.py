"""Tests for repro.obs.drift — CUSUM/Page-Hinkley detectors, SLO burn
rates, and the end-to-end drift acceptance scenario.

The acceptance tests at the bottom encode the PR's headline criterion:
a mid-simulation TX-power step (two transmitters jump +20 dB halfway
through each observation window) must trip a CUSUM ``metric_drift``
alert AND an ``slo_burn`` alert, visible in the Prometheus exposition,
the live dashboard, and the HTML run report — while a steady-state run
of the same length trips neither.
"""

import itertools

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.thresholds import ConstantThreshold
from repro.core.timeseries import RSSITimeSeries
from repro.obs.drift import (
    WATCHED_SIGNALS,
    CusumDetector,
    DriftMonitor,
    PageHinkleyDetector,
    SLOSpec,
    default_slos,
)
from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import render_prometheus
from repro.obs.report import build_report, render_html
from repro.obs.telemetry import Snapshotter
from repro.obs.tsdb import TimeSeriesDB
from repro.obs.watch import WatchFrame, render_dashboard


class TestCusumDetector:
    def test_bad_tuning_raises(self):
        with pytest.raises(ValueError):
            CusumDetector(warmup=1)
        with pytest.raises(ValueError):
            CusumDetector(k=-0.1)
        with pytest.raises(ValueError):
            CusumDetector(h=0.0)

    def test_warmup_never_trips(self):
        detector = CusumDetector(warmup=10)
        assert not any(detector.update(1000.0 * n) for n in range(10))
        assert detector.trips == 0

    def test_reference_freezes_after_warmup(self):
        detector = CusumDetector(warmup=4, h=1e9)
        for value in (1.0, 2.0, 3.0, 4.0):
            detector.update(value)
        mean, std = detector.mean, detector.std
        for _ in range(50):
            detector.update(100.0)
        assert detector.mean == mean
        assert detector.std == std

    def test_zero_mean_noise_stays_quiet(self):
        # 200 steady ticks after a 25-tick warmup: zero-mean noise
        # wanders but the slack term k drains the accumulators.
        detector = CusumDetector(k=0.5, h=6.0, warmup=25)
        rng = np.random.default_rng(1)
        values = rng.normal(5.0, 1.0, 225)
        assert not any(detector.update(v) for v in values)

    def test_persistent_shift_trips_and_rearms(self):
        detector = CusumDetector(k=0.5, h=6.0, warmup=8)
        rng = np.random.default_rng(11)
        for value in rng.normal(5.0, 1.0, 8):
            detector.update(value)
        # A 3-sigma shift accumulates ~2.5 evidence per tick: the
        # first trip lands within a few ticks, the re-armed detector
        # trips again on the persisting shift.
        trips = [detector.update(v) for v in rng.normal(8.0, 1.0, 12)]
        assert sum(trips) >= 2
        assert detector.trips == sum(trips)

    def test_trip_resets_score(self):
        detector = CusumDetector(k=0.5, h=6.0, warmup=4)
        for value in (0.0, 1.0, 0.0, 1.0):
            detector.update(value)
        while not detector.update(10.0):
            pass
        assert detector.score == 0.0

    def test_non_finite_samples_are_ignored(self):
        detector = CusumDetector(warmup=2)
        assert not detector.update(float("nan"))
        assert not detector.update(float("inf"))
        assert detector.n == 0

    def test_constant_warmup_floors_std(self):
        detector = CusumDetector(k=0.5, h=6.0, warmup=4, min_std=1e-9)
        for _ in range(4):
            detector.update(3.0)
        assert detector.std == 1e-9
        # Any later change is an enormous z-score and trips at once.
        assert detector.update(3.001)


class TestPageHinkleyDetector:
    def test_bad_tuning_raises(self):
        with pytest.raises(ValueError):
            PageHinkleyDetector(warmup=1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(lambda_=0.0)

    def test_steady_noise_stays_quiet(self):
        # PH accumulates the range of a random walk, so unlike CUSUM
        # it has no slack draining noise; assert quiet over a
        # watch-length horizon (60 post-warmup ticks), not forever.
        detector = PageHinkleyDetector(delta=0.05, lambda_=12.0, warmup=25)
        rng = np.random.default_rng(3)
        assert not any(detector.update(v) for v in rng.normal(2.0, 0.5, 85))

    def test_slow_ramp_trips(self):
        detector = PageHinkleyDetector(delta=0.05, lambda_=12.0, warmup=8)
        rng = np.random.default_rng(5)
        for value in rng.normal(0.0, 1.0, 8):
            detector.update(value)
        # A ramp that never steps: +0.2 sigma per tick.
        ramp = [0.2 * n + float(v) for n, v in
                enumerate(rng.normal(0.0, 0.3, 60))]
        trips = [detector.update(v) for v in ramp]
        assert any(trips)
        assert detector.trips == sum(trips)

    def test_trip_resets_score(self):
        detector = PageHinkleyDetector(delta=0.05, lambda_=4.0, warmup=4)
        for value in (0.0, 1.0, 0.0, 1.0):
            detector.update(value)
        while not detector.update(5.0):
            pass
        assert detector.score == 0.0


class TestSLOSpec:
    def test_from_spec_full(self):
        spec = SLOSpec.from_spec(
            "near_miss:metric=rate.margin_near_miss_rate,max=0.2,"
            "budget=0.1,short=3,long=12,burn=2.0"
        )
        assert spec.name == "near_miss"
        assert spec.metric == "rate.margin_near_miss_rate"
        assert spec.max_value == 0.2
        assert spec.budget == 0.1
        assert spec.short_window == 3
        assert spec.long_window == 12
        assert spec.burn_threshold == 2.0

    def test_from_spec_long_field_names(self):
        spec = SLOSpec.from_spec(
            "floor:metric=health.flagged_pair_rate,min_value=0.0"
        )
        assert spec.min_value == 0.0

    @pytest.mark.parametrize(
        "bad",
        [
            "no-colon-or-pairs",
            ":metric=x,max=1",  # empty name
            "x:metric=y",  # no bound
            "x:max=1",  # no metric
            "x:metric=y,max=1,frobnicate=2",  # unknown key
            "x:metric=y,max=banana",  # unparseable value
            "x:metric=y,max",  # not key=value
            "x:metric=y,max=1,budget=0",  # budget out of range
            "x:metric=y,max=1,short=5,long=2",  # long < short
            "x:metric=y,max=1,burn=0",  # burn threshold <= 0
        ],
    )
    def test_from_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            SLOSpec.from_spec(bad)

    def test_read_gauge_rate_and_hist(self):
        record = {
            "counters": {"c": {"value": 10.0, "delta": 2.0, "rate": 2.0}},
            "gauges": {"g": 0.5},
            "histograms": {
                "h": {
                    "count": 4,
                    "sum": 8.0,
                    "p99": 3.0,
                    "count_delta": 2,
                    "sum_delta": 5.0,
                }
            },
        }
        assert SLOSpec(name="a", metric="g", max_value=1.0).read(record) == 0.5
        assert (
            SLOSpec(name="b", metric="rate:c", max_value=1.0).read(record)
            == 2.0
        )
        assert (
            SLOSpec(name="c", metric="hist:h:p99", max_value=1.0).read(record)
            == 3.0
        )
        assert SLOSpec(
            name="d", metric="hist:h:tick_mean", max_value=1.0
        ).read(record) == pytest.approx(2.5)
        assert (
            SLOSpec(name="e", metric="missing", max_value=1.0).read(record)
            is None
        )
        with pytest.raises(ValueError, match="bad histogram metric"):
            SLOSpec(name="f", metric="hist:p99", max_value=1.0).read(record)

    def test_violated_bounds(self):
        ceiling = SLOSpec(name="a", metric="g", max_value=1.0)
        assert ceiling.violated(1.5) and not ceiling.violated(1.0)
        floor = SLOSpec(name="b", metric="g", min_value=0.5)
        assert floor.violated(0.4) and not floor.violated(0.5)

    def test_default_slos_construct(self):
        names = [spec.name for spec in default_slos()]
        assert names == [
            "detect_p99_ms",
            "near_miss_rate",
            "flagged_pair_rate",
            "serve_queue_wait_p99_ms",
        ]


class _NotifySpy:
    def __init__(self):
        self.calls = []

    def notify(self, kind, message, t, value, threshold):
        self.calls.append(
            {"kind": kind, "message": message, "t": t, "value": value}
        )


def _gauge_record(**gauges):
    return {"type": "snapshot", "counters": {}, "gauges": gauges,
            "histograms": {}}


class TestDriftMonitor:
    def _monitor(self, registry=None, health=None, slos=()):
        return DriftMonitor(
            registry=registry or MetricsRegistry(),
            health=health,
            signals={"sig": lambda record: record["gauges"].get("sig")},
            slos=slos,
            cusum=CusumDetector(k=0.5, h=6.0, warmup=4),
            page_hinkley=PageHinkleyDetector(delta=0.05, lambda_=8.0, warmup=4),
        )

    def test_shift_fires_metric_drift_and_routes_to_health(self):
        registry = MetricsRegistry()
        spy = _NotifySpy()
        monitor = self._monitor(registry=registry, health=spy)
        fired = []
        for tick, value in enumerate([1.0, 1.1, 0.9, 1.0] + [9.0] * 8):
            fired += monitor.observe(_gauge_record(sig=value), t=float(tick))
        assert any(alert["kind"] == "metric_drift" for alert in fired)
        assert monitor.alerts == fired
        assert spy.calls and spy.calls[0]["kind"] == "metric_drift"
        assert "sig" in fired[0]["message"]
        assert registry.counter("drift.trips").value >= 1
        # Score gauges are published every tick, even before any trip.
        assert registry.gauge("drift.sig.cusum").value is not None
        assert registry.gauge("drift.sig.page_hinkley").value is not None

    def test_observe_returns_only_new_alerts(self):
        monitor = self._monitor()
        for tick, value in enumerate([1.0, 1.1, 0.9, 1.0]):
            assert monitor.observe(_gauge_record(sig=value), t=float(tick)) == []
        all_fired = []
        for tick in range(4, 12):
            all_fired += monitor.observe(_gauge_record(sig=9.0), t=float(tick))
        assert all_fired == monitor.alerts

    def test_missing_signal_is_skipped(self):
        monitor = self._monitor()
        assert monitor.observe(_gauge_record(), t=0.0) == []
        assert monitor.ticks == 1

    def test_steady_signal_stays_quiet(self):
        monitor = self._monitor()
        rng = np.random.default_rng(13)
        for tick, value in enumerate(rng.normal(1.0, 0.1, 200)):
            monitor.observe(_gauge_record(sig=float(value)), t=float(tick))
        assert monitor.alerts == []

    def test_watched_signals_extract_from_snapshot_record(self):
        record = {
            "counters": {
                "detector.beacons_observed": {
                    "value": 50.0, "delta": 10.0, "rate": 10.0,
                }
            },
            "gauges": {
                "rate.margin_near_miss_rate": 0.1,
                "rate.pairwise_cache_hit_rate": 0.8,
            },
            "histograms": {
                "pipeline.margin.signed": {
                    "count": 10, "sum": 20.0,
                    "count_delta": 5, "sum_delta": 10.0,
                }
            },
        }
        extracted = {
            name: extract(record)
            for name, extract in WATCHED_SIGNALS.items()
        }
        assert extracted == {
            "margin_mean": 2.0,
            "near_miss_rate": 0.1,
            "cache_hit_rate": 0.8,
            "beacon_interarrival_s": 0.1,
            "serve_queue_wait_ms": None,
        }

    def test_slo_burn_needs_full_short_window_and_both_windows(self):
        registry = MetricsRegistry()
        slo = SLOSpec(
            name="band", metric="g", max_value=1.0, budget=0.5,
            short_window=2, long_window=4,
        )
        monitor = DriftMonitor(
            registry=registry, health=None, signals={}, slos=[slo]
        )
        # One bad tick: short window not full yet -> no alert.
        fired = monitor.observe(_gauge_record(g=2.0), t=0.0)
        assert fired == []
        assert registry.gauge("slo.band.burn_short").value == 2.0
        # Second bad tick: short full at 2x budget, long at 2x -> alert.
        fired = monitor.observe(_gauge_record(g=2.0), t=1.0)
        assert [alert["kind"] for alert in fired] == ["slo_burn"]
        assert "band" in fired[0]["message"]
        assert registry.counter("slo.burn_alerts").value == 1
        # One good tick still burns at exactly 1.0x (one bad of two at
        # a 0.5 budget) and keeps alerting; the second good tick ages
        # the breach out of the short window and the alert clears.
        fired = monitor.observe(_gauge_record(g=0.5), t=2.0)
        assert [alert["kind"] for alert in fired] == ["slo_burn"]
        for tick in range(3, 8):
            assert monitor.observe(_gauge_record(g=0.5), t=float(tick)) == []
        assert registry.gauge("slo.band.burn_short").value == 0.0

    def test_slo_with_missing_metric_is_skipped(self):
        slo = SLOSpec(name="x", metric="absent", max_value=1.0)
        monitor = DriftMonitor(
            registry=MetricsRegistry(), health=None, signals={}, slos=[slo]
        )
        assert monitor.observe(_gauge_record(), t=0.0) == []


# ----------------------------------------------------------------------
# Acceptance: TX-power step trips CUSUM + SLO burn; steady trips neither
# ----------------------------------------------------------------------
_OBS_TIME_S = 30.0
_SAMPLES = 80
_IDENTITIES = 5
_PERIODS = 20
_STEP_AT_PERIOD = 10
_STEP_DB = 20.0
_MARGIN_CEILING = 3.5


def _run_fleet(step: bool):
    """Replay _PERIODS detection periods over a stable vehicle fleet.

    Every period re-observes the same five base random-walk voiceprints
    (fresh small-jitter realisations, so the steady margin mean is flat
    but not constant).  With ``step=True``, two transmitters gain
    +20 dB halfway through each observation window from period 10 on —
    a TX-power step.  The step survives the detector's per-series
    z-normalisation as a dominant shared edge, and because distances
    are min-max normalised per report (paper Eq. 8), the two stepped
    outliers stretch the normalisation range and shift the whole
    signed-margin distribution: exactly the silent environment drift
    the watchtower exists to catch.
    """
    registry = MetricsRegistry()
    health = HealthMonitor(registry=registry)
    tsdb = TimeSeriesDB()
    drift = DriftMonitor(
        registry=registry,
        health=health,
        cusum=CusumDetector(k=0.5, h=6.0, warmup=8),
        page_hinkley=PageHinkleyDetector(delta=0.05, lambda_=12.0, warmup=8),
        slos=[
            SLOSpec(
                name="margin_band",
                metric="hist:pipeline.margin.signed:tick_mean",
                max_value=_MARGIN_CEILING,
                budget=0.2,
                short_window=3,
                long_window=6,
            )
        ],
    )
    snapshotter = Snapshotter(
        registry=registry,
        interval_s=1.0,
        tsdb=tsdb,
        drift=drift,
        health=health,
        clock=itertools.count(0.0, 1.0).__next__,
    )
    config = DetectorConfig(observation_time=_OBS_TIME_S)
    times = np.linspace(0.0, _OBS_TIME_S, _SAMPLES)
    base = {
        index: -70.0
        + np.cumsum(
            np.random.default_rng(100 + index).normal(0.0, 0.8, _SAMPLES)
        )
        for index in range(_IDENTITIES)
    }
    for period in range(_PERIODS):
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(0.08),
            config=config,
            registry=registry,
            health=health,
        )
        for index in range(_IDENTITIES):
            jitter = np.random.default_rng(
                1000 * period + index
            ).normal(0.0, 0.2, _SAMPLES)
            rssi = base[index] + jitter
            if step and period >= _STEP_AT_PERIOD and index < 2:
                rssi = rssi + np.where(
                    times >= _OBS_TIME_S / 2.0, _STEP_DB, 0.0
                )
            series = RSSITimeSeries(f"v{index}")
            for t, value in zip(times, rssi):
                series.append(float(t), float(value))
            detector.load_series(series)
        detector.detect(density=40.0, now=_OBS_TIME_S)
        snapshotter.tick()
    return registry, health, tsdb, drift


def _watch_alert_kinds(drift):
    return {alert["kind"] for alert in drift.alerts}


class TestDriftAcceptance:
    def test_steady_run_trips_nothing(self):
        registry, health, _tsdb, drift = _run_fleet(step=False)
        assert _watch_alert_kinds(drift) == set()
        health_kinds = {
            alert["kind"] for alert in health.status()["alerts"]
        }
        assert not health_kinds & {"metric_drift", "slo_burn"}
        assert registry.counter("drift.trips").value == 0
        assert registry.counter("slo.burn_alerts").value == 0

    def test_tx_power_step_trips_cusum_and_slo_burn(self):
        registry, health, tsdb, drift = _run_fleet(step=True)
        kinds = _watch_alert_kinds(drift)
        assert {"metric_drift", "slo_burn"} <= kinds
        # No alert fires before the step is injected.
        assert all(alert["t"] >= _STEP_AT_PERIOD for alert in drift.alerts)
        # The CUSUM trip names the collapsed signal.
        first_drift = next(
            alert for alert in drift.alerts
            if alert["kind"] == "metric_drift"
        )
        assert "margin_mean" in first_drift["message"]
        # Alerts route into the health monitor as first-class kinds.
        health_kinds = {
            alert["kind"] for alert in health.status()["alerts"]
        }
        assert {"metric_drift", "slo_burn"} <= health_kinds

        # Visible in the Prometheus exposition...
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert any(
            line.startswith("repro_drift_margin_mean_cusum") for line in lines
        )
        assert any(
            line.startswith("repro_slo_margin_band_burn_short")
            for line in lines
        )
        trips = next(
            line for line in lines
            if line.startswith("repro_drift_trips_total")
        )
        assert float(trips.split()[-1]) >= 1.0

        # ...in the live dashboard...
        frame = WatchFrame(
            source="acceptance",
            kind="live",
            tsdb=tsdb,
            status=health.status()["status"],
            alerts=list(drift.alerts),
        )
        dashboard = render_dashboard(frame)
        assert "drift scores" in dashboard
        assert "** BURN **" in dashboard
        assert "metric_drift" in dashboard

        # ...and in the end-of-run HTML report.
        html = render_html(
            build_report(tsdb=tsdb, health=health, drift=drift)
        )
        assert "metric_drift" in html
        assert "slo_burn" in html
