"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_one_shot_fires_at_time(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(2.5, fired.append)
        engine.run_until(10.0)
        assert fired == [2.5]

    def test_schedule_after(self):
        engine = SimulationEngine(start_time=5.0)
        fired = []
        engine.schedule_after(1.5, fired.append)
        engine.run_until(10.0)
        assert fired == [6.5]

    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda t: fired.append("late"))
        engine.schedule_at(1.0, lambda t: fired.append("early"))
        engine.run_until(5.0)
        assert fired == ["early", "late"]

    def test_simultaneous_events_fifo(self):
        engine = SimulationEngine()
        fired = []
        for name in ("first", "second", "third"):
            engine.schedule_at(1.0, lambda t, n=name: fired.append(n))
        engine.run_until(2.0)
        assert fired == ["first", "second", "third"]

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda t: None)
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.schedule_at(2.0, lambda t: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_after(-1.0, lambda t: None)

    def test_rejects_non_finite_time(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_at(float("inf"), lambda t: None)

    def test_callback_can_schedule_more(self):
        engine = SimulationEngine()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3.0:
                engine.schedule_at(t + 1.0, chain)

        engine.schedule_at(1.0, chain)
        engine.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]


class TestPeriodic:
    def test_periodic_cadence(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_periodic(0.5, fired.append, first_at=0.0)
        engine.run_until(2.0)
        assert fired == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_default_first_firing_after_one_period(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_periodic(1.0, fired.append)
        engine.run_until(2.5)
        assert fired == [1.0, 2.0]

    def test_cancel_stops_repetition(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule_periodic(1.0, fired.append, first_at=0.0)
        engine.run_until(2.0)
        handle.cancel()
        engine.run_until(10.0)
        assert fired == [0.0, 1.0, 2.0]

    def test_cancel_from_inside_callback(self):
        engine = SimulationEngine()
        fired = []

        def callback(t):
            fired.append(t)
            if len(fired) == 2:
                handle.cancel()

        handle = engine.schedule_periodic(1.0, callback, first_at=0.0)
        engine.run_until(10.0)
        assert fired == [0.0, 1.0]

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_periodic(0.0, lambda t: None)

    def test_resumable(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_periodic(1.0, fired.append, first_at=0.0)
        engine.run_until(1.0)
        assert fired == [0.0, 1.0]
        engine.run_until(3.0)
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestClock:
    def test_now_advances_to_end(self):
        engine = SimulationEngine()
        engine.run_until(7.0)
        assert engine.now == 7.0

    def test_now_during_callbacks(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(2.0, lambda t: seen.append(engine.now))
        engine.run_until(5.0)
        assert seen == [2.0]

    def test_cannot_run_backwards(self):
        engine = SimulationEngine()
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.run_until(1.0)

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_run_drains_queue(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, fired.append)
        engine.schedule_at(2.0, fired.append)
        engine.run()
        assert fired == [1.0, 2.0]
