"""Smoke tests for the experiment harness (small parameterisations)."""


import pytest

from repro.eval.experiments import (
    run_ablations,
    run_boundary_training,
    run_dtw_example,
    run_fig13,
    run_fig14,
    run_observation1,
    run_observation3,
    run_table1,
    run_table4,
    run_timing,
)


class TestObservation1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_observation1(duration_s=60.0, n_moving_segments=2)

    def test_row_count(self, rows):
        assert len(rows) == 4  # 2 stationary + 2 moving

    def test_stationary_sample_counts(self, rows):
        assert rows[0].n_samples == 600

    def test_ranging_error_is_gross(self, rows):
        """Observation 1: model inversion misses the true distance."""
        for row in rows[:2]:
            assert row.fspl_error_m / row.true_distance_m > 0.2

    def test_sessions_differ(self, rows):
        assert rows[0].mean_dbm != rows[1].mean_dbm


class TestTable4:
    def test_fit_recovers_paper_parameters(self):
        rows = run_table4(environments=("campus",), n_samples=2500)
        row = rows[0]
        assert row.gamma1_fit == pytest.approx(row.gamma1_true, abs=0.25)
        assert row.gamma2_fit == pytest.approx(row.gamma2_true, abs=0.6)
        assert row.dc_fit == pytest.approx(row.dc_true, rel=0.3)


class TestObservation3:
    def test_sybil_streams_most_similar(self):
        results = run_observation3(duration_s=60.0)
        assert len(results) == 2
        for result in results:
            # Observation 3: within-attacker similarity beats everything
            # crossing the attacker boundary.
            assert result.max_within_sybil() < result.min_cross()


class TestDtwExample:
    def test_equations_yield_five(self):
        result = run_dtw_example()
        assert result.squared_distance == 5.0
        assert result.absolute_distance == 5.0
        assert result.paper_claimed == 9.0
        assert not result.matches_paper

    def test_path_reported(self):
        result = run_dtw_example()
        assert result.path[0] == (1, 1)
        assert result.path[-1] == (5, 6)


class TestBoundaryTraining:
    def test_small_sweep_trains_line(self):
        from repro.sim.scenario import ScenarioConfig

        result = run_boundary_training(
            densities_vhls_per_km=(15, 45),
            base_config=ScenarioConfig(sim_time_s=45.0),
            seed=77,
        )
        assert result.n_positive > 0
        assert result.n_negative > result.n_positive
        assert result.training_tpr > 0.2
        assert result.training_fpr < 0.05
        assert result.line.threshold_at(15.0) > 0.0


class TestField:
    def test_fig13_smoke(self):
        areas = run_fig13(
            environments=("rural",), duration_s=90.0, detection_period_s=30.0
        )
        assert len(areas) == 1
        area = areas[0]
        assert area.detections
        assert area.detection_rate is not None
        assert area.detection_rate > 0.5

    def test_fig14_finds_stationary_periods(self):
        result = run_fig14(duration_s=180.0, detection_period_s=30.0)
        assert len(result.stationary_periods) + len(result.moving_periods) > 0
        assert result.false_positives_confirmed <= result.false_positives_single


class TestTiming:
    def test_reports_scaling(self):
        result = run_timing(neighbour_counts=(5, 10), pair_repeats=5)
        assert result.pair_ms > 0.0
        assert len(result.full_detection_ms) == 2
        # Pairs grow quadratically: 10 ids ~ 45 pairs vs 5 ids ~ 10.
        assert result.full_detection_ms[1] > result.full_detection_ms[0]
        assert result.within_detection_period(20.0)


class TestTable1:
    def test_eight_methods(self):
        rows = run_table1()
        assert len(rows) == 8
        voiceprint = [r for r in rows if r.method == "Voiceprint"][0]
        assert voiceprint.propagation_model == "Model-free"
        assert voiceprint.implemented

    def test_implemented_flags(self):
        rows = run_table1()
        assert sum(r.implemented for r in rows) == 8


class TestAblations:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablations(duration_s=80.0)

    def test_groups_present(self, rows):
        groups = {row.group for row in rows}
        assert {"normalisation", "dtw-band", "measure", "smart-attacker"} <= groups

    def test_normalisation_matters_under_spoofing(self, rows):
        by_variant = {r.variant: r for r in rows if r.group == "normalisation"}
        # Raw series: spoofed powers separate the Sybil streams.
        # Any centering restores the similarity.
        assert by_variant["none"].margin < by_variant["center-only"].margin

    def test_centering_restores_separation(self, rows):
        by_variant = {r.variant: r for r in rows if r.group == "normalisation"}
        assert by_variant["common-scale z-score"].margin > 1.0

    def test_smart_attacker_collapses_margin(self, rows):
        smart = [r for r in rows if r.group == "smart-attacker"][0]
        best_normalised = max(
            r.margin for r in rows if r.group == "normalisation"
        )
        assert smart.margin < best_normalised


class TestFig11Smoke:
    def test_single_density_both_methods(self):
        from repro.core.lda import DecisionLine
        from repro.eval.experiments import run_fig11
        from repro.sim.scenario import ScenarioConfig

        rows = run_fig11(
            DecisionLine(k=0.0, b=0.002),
            densities_vhls_per_km=(20,),
            runs_per_density=1,
            base_config=ScenarioConfig(sim_time_s=45.0),
            recorded_nodes=5,
            verifiers_per_run=2,
            seed=900,
        )
        assert {r.method for r in rows} == {"voiceprint", "cpvsad"}
        for row in rows:
            assert row.n_outcomes > 0
            assert not row.model_change


class TestBeaconRate:
    def test_rate_sweep_structure(self):
        from repro.eval.experiments import run_beacon_rate_study

        rows = run_beacon_rate_study(
            beacon_rates_hz=(10.0,),
            observation_times_s=(5.0, 20.0),
            duration_s=60.0,
        )
        assert rows
        by_time = {r.observation_time_s: r for r in rows}
        # Sample counts scale with the window at a fixed rate.
        assert by_time[20.0].samples_per_series > by_time[5.0].samples_per_series

    def test_validation(self):
        import pytest as _pytest

        from repro.eval.experiments import run_beacon_rate_study

        with _pytest.raises(ValueError):
            run_beacon_rate_study(observation_times_s=(0.0,))
