"""Tests for repro.obs.timers.Stopwatch."""

import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.timers import Stopwatch


class TestStopwatch:
    def test_context_manager_records_into_histogram(self):
        histogram = MetricsRegistry().histogram("h")
        with Stopwatch(histogram):
            time.sleep(0.002)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["min"] >= 2.0  # slept at least 2 ms

    def test_standalone_elapsed(self):
        watch = Stopwatch()
        assert watch.elapsed_ms is None
        with watch:
            pass
        assert watch.elapsed_ms is not None
        assert watch.elapsed_ms >= 0.0

    def test_reuse_records_one_sample_per_block(self):
        histogram = MetricsRegistry().histogram("h")
        watch = Stopwatch(histogram)
        for _ in range(3):
            with watch:
                pass
        assert histogram.count == 3

    def test_decorator(self):
        histogram = MetricsRegistry().histogram("h")

        @Stopwatch(histogram)
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert add(b=1, a=1) == 2
        assert histogram.count == 2
        assert add.__name__ == "add"

    def test_records_even_when_body_raises(self):
        histogram = MetricsRegistry().histogram("h")
        try:
            with Stopwatch(histogram):
                raise ValueError("boom")
        except ValueError:
            pass
        assert histogram.count == 1

    def test_disabled_histogram_still_measures(self):
        registry = MetricsRegistry(enabled=False)
        histogram = registry.histogram("h")
        with Stopwatch(histogram) as watch:
            pass
        assert watch.elapsed_ms is not None
        assert histogram.count == 0
