"""Tests for repro.bench_compare — the benchmark regression gate."""

import json

import pytest

from repro.bench_compare import compare_payloads, main


def payload(**configs):
    """A miniature BENCH_*.json-shaped payload."""
    return {
        "workload": {"n_series": 24, "length": 200},
        "configs": configs,
    }


BASELINE = payload(
    full={
        "wall_ms": 100.0,
        "pairs_per_s": 5000.0,
        "hit_rate": 0.60,
        "dtw_cells": 1_000_000,
        "pairs": 276,
        "detections": 3,
    }
)


def by_path(results):
    return {r.path: r for r in results}


class TestComparePayloads:
    def test_identical_payloads_pass(self):
        results = compare_payloads(BASELINE, BASELINE)
        assert not any(r.failed for r in results)

    def test_cost_metric_growth_regresses(self):
        current = payload(
            full=dict(BASELINE["configs"]["full"], dtw_cells=1_300_000)
        )
        results = by_path(compare_payloads(BASELINE, current))
        entry = results["configs.full.dtw_cells"]
        assert entry.failed
        assert entry.change == pytest.approx(0.30)

    def test_cost_metric_shrink_is_a_win(self):
        current = payload(
            full=dict(BASELINE["configs"]["full"], dtw_cells=500_000)
        )
        results = by_path(compare_payloads(BASELINE, current))
        assert results["configs.full.dtw_cells"].verdict == "ok"

    def test_quality_metric_drop_regresses(self):
        current = payload(
            full=dict(BASELINE["configs"]["full"], hit_rate=0.30)
        )
        results = by_path(compare_payloads(BASELINE, current))
        assert results["configs.full.hit_rate"].failed

    def test_invariant_metric_fails_both_directions(self):
        for pairs in (100, 400):
            current = payload(
                full=dict(BASELINE["configs"]["full"], pairs=pairs)
            )
            results = by_path(compare_payloads(BASELINE, current))
            assert results["configs.full.pairs"].failed

    def test_within_tolerance_passes(self):
        current = payload(
            full=dict(BASELINE["configs"]["full"], dtw_cells=1_050_000)
        )
        results = by_path(compare_payloads(BASELINE, current))
        assert results["configs.full.dtw_cells"].verdict == "ok"

    def test_timing_skipped_by_default_and_gated_on_request(self):
        current = payload(
            full=dict(BASELINE["configs"]["full"], wall_ms=1e9)
        )
        results = by_path(compare_payloads(BASELINE, current))
        assert results["configs.full.wall_ms"].verdict == "info"
        results = by_path(
            compare_payloads(BASELINE, current, timing_tolerance=0.5)
        )
        assert results["configs.full.wall_ms"].failed

    def test_unknown_leaves_are_informational(self):
        base = payload(full={"novel_metric": 10.0})
        current = payload(full={"novel_metric": 99.0})
        results = by_path(compare_payloads(base, current))
        entry = results["configs.full.novel_metric"]
        assert entry.verdict == "info"
        assert not entry.failed

    def test_missing_leaf_reported(self):
        current = payload(full={"wall_ms": 100.0})
        results = by_path(compare_payloads(BASELINE, current))
        assert results["configs.full.dtw_cells"].verdict == "MISSING"

    def test_extra_current_leaves_ignored(self):
        current = payload(
            full=dict(BASELINE["configs"]["full"], brand_new=1.0)
        )
        results = compare_payloads(BASELINE, current)
        assert "configs.full.brand_new" not in {r.path for r in results}

    def test_per_metric_override(self):
        current = payload(
            full=dict(BASELINE["configs"]["full"], dtw_cells=1_050_000)
        )
        results = by_path(
            compare_payloads(
                BASELINE, current, overrides={"dtw_cells": 0.01}
            )
        )
        assert results["configs.full.dtw_cells"].failed

    def test_zero_baseline_handled(self):
        base = payload(full={"cache_hits": 0})
        grown = payload(full={"cache_hits": 50})
        shrunk_cost = compare_payloads(
            payload(full={"dtw_cells": 0}), payload(full={"dtw_cells": 5})
        )
        assert not any(r.failed for r in compare_payloads(base, grown))
        assert any(r.failed for r in shrunk_cost)

    def test_booleans_are_not_numeric_leaves(self):
        base = payload(full={"cached": True, "pairs": 10})
        results = compare_payloads(base, base)
        assert {r.key for r in results} >= {"pairs"}
        assert "cached" not in {r.key for r in results}


class TestMainGate:
    def write(self, directory, name, data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(data), encoding="utf-8")

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        self.write(tmp_path / "base", "BENCH_pairwise.json", BASELINE)
        self.write(tmp_path / "cur", "BENCH_pairwise.json", BASELINE)
        code = main(
            [
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
            ]
        )
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_perturbed_baseline_exits_nonzero(self, tmp_path, capsys):
        perturbed = payload(
            full=dict(BASELINE["configs"]["full"], dtw_cells=2_000_000)
        )
        self.write(tmp_path / "base", "BENCH_pairwise.json", BASELINE)
        self.write(tmp_path / "cur", "BENCH_pairwise.json", perturbed)
        code = main(
            [
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
            ]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_current_artifact_fails(self, tmp_path, capsys):
        self.write(tmp_path / "base", "BENCH_pairwise.json", BASELINE)
        code = main(
            [
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
            ]
        )
        assert code == 1
        assert "missing current artifact" in capsys.readouterr().err

    def test_no_baselines_fails_with_hint(self, tmp_path, capsys):
        code = main(
            [
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
            ]
        )
        assert code == 1
        assert "--update" in capsys.readouterr().err

    def test_update_promotes_current_to_baseline(self, tmp_path):
        self.write(tmp_path / "cur", "BENCH_pairwise.json", BASELINE)
        code = main(
            [
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
                "--update",
            ]
        )
        assert code == 0
        promoted = json.loads(
            (tmp_path / "base" / "BENCH_pairwise.json").read_text()
        )
        assert promoted == BASELINE

    def test_only_filter_limits_artifacts(self, tmp_path):
        self.write(tmp_path / "base", "BENCH_pairwise.json", BASELINE)
        self.write(tmp_path / "base", "BENCH_other.json", BASELINE)
        self.write(tmp_path / "cur", "BENCH_pairwise.json", BASELINE)
        # BENCH_other.json has no current artifact, but --only skips it.
        code = main(
            [
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
                "--only", "BENCH_pairwise.json",
            ]
        )
        assert code == 0


class TestHistory:
    def write(self, directory, name, data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(data), encoding="utf-8")

    def test_append_history_flattens_numeric_leaves(self, tmp_path):
        from repro.bench_compare import append_history

        self.write(tmp_path / "cur", "BENCH_pairwise.json", BASELINE)
        history = tmp_path / "history" / "BENCH_history.jsonl"
        appended = append_history(
            history,
            tmp_path / "cur",
            ["BENCH_pairwise.json", "BENCH_missing.json"],
            timestamp="2026-08-07T00:00:00Z",
        )
        assert appended == 1  # the missing artifact is skipped
        (line,) = history.read_text().strip().splitlines()
        entry = json.loads(line)
        assert entry["artifact"] == "BENCH_pairwise.json"
        assert entry["ts"] == "2026-08-07T00:00:00Z"
        assert entry["metrics"]["configs.full.wall_ms"] == 100.0
        assert entry["metrics"]["workload.n_series"] == 24

    def test_append_history_appends_not_truncates(self, tmp_path):
        from repro.bench_compare import append_history

        self.write(tmp_path / "cur", "BENCH_pairwise.json", BASELINE)
        history = tmp_path / "BENCH_history.jsonl"
        for stamp in ("a", "b"):
            append_history(
                history, tmp_path / "cur", ["BENCH_pairwise.json"],
                timestamp=stamp,
            )
        stamps = [
            json.loads(line)["ts"]
            for line in history.read_text().strip().splitlines()
        ]
        assert stamps == ["a", "b"]

    def test_cli_history_mode_records_current_artifacts(
        self, tmp_path, capsys
    ):
        self.write(tmp_path / "cur", "BENCH_pairwise.json", BASELINE)
        self.write(tmp_path / "cur", "BENCH_other.json", BASELINE)
        history = tmp_path / "BENCH_history.jsonl"
        code = main(
            [
                "--current-dir", str(tmp_path / "cur"),
                "--history", str(history),
            ]
        )
        assert code == 0
        assert "appended 2 entries" in capsys.readouterr().out
        artifacts = [
            json.loads(line)["artifact"]
            for line in history.read_text().strip().splitlines()
        ]
        assert artifacts == ["BENCH_other.json", "BENCH_pairwise.json"]

    def test_cli_history_mode_respects_only(self, tmp_path, capsys):
        self.write(tmp_path / "cur", "BENCH_pairwise.json", BASELINE)
        self.write(tmp_path / "cur", "BENCH_other.json", BASELINE)
        history = tmp_path / "BENCH_history.jsonl"
        code = main(
            [
                "--current-dir", str(tmp_path / "cur"),
                "--history", str(history),
                "--only", "BENCH_pairwise.json",
            ]
        )
        assert code == 0
        assert "appended 1 entry" in capsys.readouterr().out

    def test_cli_history_mode_fails_without_artifacts(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "--current-dir", str(tmp_path / "cur"),
                "--history", str(tmp_path / "BENCH_history.jsonl"),
            ]
        )
        assert code == 1
        assert "no BENCH_*.json artifacts" in capsys.readouterr().err


class TestWatchRules:
    def test_watch_counters_are_deterministic_invariants(self):
        base = {
            "watch": {
                "ticks": 30, "series": 51,
                "tsdb_samples": 1467, "drift_alerts": 0,
            },
            "timing": {"watched_cpu_ms": 37.8},
        }
        drifted = {
            "watch": {
                "ticks": 30, "series": 51,
                "tsdb_samples": 1467, "drift_alerts": 2,
            },
            "timing": {"watched_cpu_ms": 37.8},
        }
        results = by_path(compare_payloads(base, drifted))
        alerts = results["watch.drift_alerts"]
        assert alerts.verdict == "REGRESSED"  # invariant broke
        assert alerts.failed
        assert results["watch.ticks"].verdict == "ok"

    def test_watched_cpu_is_a_timing_leaf(self):
        base = {"timing": {"watched_cpu_ms": 10.0}}
        slower = {"timing": {"watched_cpu_ms": 50.0}}
        # Informational by default (host noise)...
        results = by_path(compare_payloads(base, slower))
        assert results["timing.watched_cpu_ms"].verdict == "info"
        assert not results["timing.watched_cpu_ms"].failed
        # ...but gated when a timing tolerance is requested.
        results = by_path(
            compare_payloads(base, slower, timing_tolerance=0.25)
        )
        assert results["timing.watched_cpu_ms"].verdict == "REGRESSED"
