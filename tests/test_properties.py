"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distances import euclidean_distance, lp_distance
from repro.core.dtw import dtw, dtw_banded, dtw_distance, warp_path_cells
from repro.core.fastdtw import coarsen, dtw_banded_fast, fastdtw
from repro.core.normalization import minmax, zscore
from repro.core.timeseries import RSSITimeSeries
from repro.mobility.highway import HighwayGeometry, LanePosition
from repro.radio.dual_slope import DualSlopeModel
from repro.radio.environments import CAMPUS, RURAL, URBAN
from repro.radio.noise import ValueNoise3D
from repro.sim.engine import SimulationEngine

finite_series = arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)

small_series = arrays(
    dtype=np.float64,
    shape=st.integers(2, 25),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
)


class TestDtwProperties:
    @given(x=small_series, y=small_series)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, x, y):
        assert dtw(x, y).distance == pytest.approx(dtw(y, x).distance)

    @given(x=small_series)
    @settings(max_examples=40, deadline=None)
    def test_identity(self, x):
        assert dtw(x, x).distance == 0.0

    @given(x=small_series, y=small_series)
    @settings(max_examples=60, deadline=None)
    def test_non_negative(self, x, y):
        assert dtw(x, y).distance >= 0.0

    @given(x=small_series, y=small_series)
    @settings(max_examples=40, deadline=None)
    def test_path_valid(self, x, y):
        result = dtw(x, y)
        assert warp_path_cells(result.path)
        assert result.path[-1] == (len(x), len(y))

    @given(x=small_series, y=small_series)
    @settings(max_examples=40, deadline=None)
    def test_fast_distance_matches_full(self, x, y):
        assert dtw_distance(x, y) == pytest.approx(dtw(x, y).distance)

    @given(x=small_series, y=small_series, radius=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_banded_upper_bounds_exact(self, x, y, radius):
        exact = dtw(x, y).distance
        assert dtw_banded(x, y, radius).distance >= exact - 1e-9
        assert dtw_banded_fast(x, y, radius).distance >= exact - 1e-9

    @given(x=small_series, y=small_series, radius=st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_fastdtw_upper_bounds_exact(self, x, y, radius):
        exact = dtw(x, y).distance
        assert fastdtw(x, y, radius).distance >= exact - 1e-9

    @given(x=small_series)
    @settings(max_examples=30, deadline=None)
    def test_coarsen_halves_length(self, x):
        out = coarsen(x)
        assert out.size == (x.size + 1) // 2

    @given(x=small_series)
    @settings(max_examples=30, deadline=None)
    def test_coarsen_preserves_mean(self, x):
        assume(x.size % 2 == 0)
        assert np.mean(coarsen(x)) == pytest.approx(np.mean(x), abs=1e-9)


class TestNormalizationProperties:
    @given(x=finite_series, shift=st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_zscore_shift_invariant(self, x, shift):
        np.testing.assert_allclose(
            zscore(x), zscore(x + shift), atol=1e-6
        )

    @given(x=finite_series, scale=st.floats(0.1, 20.0))
    @settings(max_examples=60, deadline=None)
    def test_zscore_scale_invariant(self, x, scale):
        np.testing.assert_allclose(
            zscore(x), zscore(x * scale), atol=1e-6
        )

    @given(x=finite_series)
    @settings(max_examples=60, deadline=None)
    def test_minmax_in_unit_interval(self, x):
        out = minmax(x)
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)

    @given(x=finite_series)
    @settings(max_examples=60, deadline=None)
    def test_minmax_order_preserving(self, x):
        out = minmax(x)
        for i in range(len(x) - 1):
            if x[i] < x[i + 1]:
                assert out[i] <= out[i + 1]


class TestLpProperties:
    @given(x=small_series, y=small_series, z=small_series)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, x, y, z):
        n = min(x.size, y.size, z.size)
        x, y, z = x[:n], y[:n], z[:n]
        assert euclidean_distance(x, z) <= (
            euclidean_distance(x, y) + euclidean_distance(y, z) + 1e-9
        )

    @given(x=small_series, p=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_identity_of_indiscernibles(self, x, p):
        assert lp_distance(x, x, p) == 0.0


class TestTimeSeriesProperties:
    @given(
        values=st.lists(
            st.floats(-120, 0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_window_subset(self, values):
        series = RSSITimeSeries.from_values("p", values)
        window = series.window(0.05, 0.25)
        assert len(window) <= len(series)
        for sample in window:
            assert 0.05 <= sample.timestamp < 0.25

    @given(
        values=st.lists(
            st.floats(-120, 0, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mean_between_min_max(self, values):
        series = RSSITimeSeries.from_values("p", values)
        assert min(values) - 1e-9 <= series.mean() <= max(values) + 1e-9


class TestRadioProperties:
    @given(
        d1=st.floats(1.0, 5000.0),
        d2=st.floats(1.0, 5000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_dual_slope_monotone(self, d1, d2):
        assume(d1 < d2)
        for params in (CAMPUS, RURAL, URBAN):
            model = DualSlopeModel(params)
            assert model.path_loss_db(d1) <= model.path_loss_db(d2) + 1e-9

    @given(
        x=st.floats(-1e4, 1e4),
        y=st.floats(-1e4, 1e4),
        t=st.floats(0, 1e4),
    )
    @settings(max_examples=60, deadline=None)
    def test_noise_field_deterministic_and_finite(self, x, y, t):
        field = ValueNoise3D(seed=99)
        value = field.value(x, y, t)
        assert math.isfinite(value)
        assert value == field.value(x, y, t)


class TestHighwayProperties:
    @given(
        x=st.floats(0.0, 2000.0),
        lane=st.integers(0, 3),
        distance=st.floats(0.0, 10000.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_advance_stays_on_road(self, x, lane, distance):
        geometry = HighwayGeometry()
        out = geometry.advance(LanePosition(x, lane), distance)
        assert 0.0 <= out.x <= geometry.length_m
        assert 0 <= out.lane < geometry.total_lanes


class TestEngineProperties:
    @given(
        times=st.lists(
            st.floats(0.01, 100.0, allow_nan=False), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_events_fire_in_nondecreasing_order(self, times):
        engine = SimulationEngine()
        fired = []
        for when in times:
            engine.schedule_at(when, fired.append)
        engine.run_until(101.0)
        assert fired == sorted(fired)
        assert len(fired) == len(times)
