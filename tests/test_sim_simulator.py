"""Integration-level tests for the highway simulator and field test."""

import numpy as np
import pytest

from repro.attack.sybil import ConstantPower, PerPacketRandomPower, SybilAttacker, SybilIdentity
from repro.sim.fieldtest import (
    FieldTestConfig,
    MALICIOUS_ID,
    NORMAL_IDS,
    SYBIL_IDS,
    run_field_test,
)
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import HighwaySimulator


SMALL = ScenarioConfig(density_vhls_per_km=15, sim_time_s=25.0, seed=2)


@pytest.fixture(scope="module")
def small_run():
    return HighwaySimulator(SMALL, recorded_nodes=4).run()


class TestScenarioConfig:
    def test_table_v_defaults(self):
        config = ScenarioConfig()
        assert config.highway_length_m == 2000.0
        assert config.lanes_per_direction == 2
        assert config.lane_width_m == 3.6
        assert config.malicious_fraction == 0.05
        assert config.n_sybils_range == (3, 6)
        assert config.tx_power_range_dbm == (17.0, 23.0)
        assert config.beacon_rate_hz == 10.0
        assert config.packet_size_bytes == 500
        assert config.epoch_rate == 0.2
        assert config.mean_speed_mps == 25.0
        assert config.speed_std_mps == 5.0
        assert config.observation_time_s == 20.0
        assert config.model_change_period_s == 30.0
        assert config.sim_time_s == 100.0

    def test_vehicle_count_from_density(self):
        assert ScenarioConfig(density_vhls_per_km=50).n_vehicles == 100
        assert ScenarioConfig(density_vhls_per_km=10).n_vehicles == 20

    def test_at_least_one_attacker(self):
        assert ScenarioConfig(density_vhls_per_km=10).n_malicious == 1

    def test_no_attackers_when_fraction_zero(self):
        assert ScenarioConfig(malicious_fraction=0.0).n_malicious == 0

    def test_with_density_and_seed(self):
        config = ScenarioConfig().with_density(30.0).with_seed(9)
        assert config.density_vhls_per_km == 30.0
        assert config.seed == 9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"highway_length_m": 0.0},
            {"density_vhls_per_km": 0.0},
            {"malicious_fraction": 1.5},
            {"n_sybils_range": (0, 3)},
            {"tx_power_range_dbm": (23.0, 17.0)},
            {"sim_time_s": 10.0},  # shorter than observation time
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)


class TestGroundTruth:
    def test_partitions(self, small_run):
        truth = small_run.truth
        assert not (truth.normal_ids & truth.malicious_ids)
        assert not (truth.normal_ids & truth.sybil_ids)
        for sybil, attacker in truth.sybil_to_attacker.items():
            assert attacker in truth.malicious_ids

    def test_attacker_of(self, small_run):
        truth = small_run.truth
        for sybil, attacker in truth.sybil_to_attacker.items():
            assert truth.attacker_of(sybil) == attacker
            assert truth.attacker_of(attacker) == attacker
        normal = next(iter(truth.normal_ids))
        assert truth.attacker_of(normal) is None

    def test_sybil_counts_in_paper_range(self, small_run):
        truth = small_run.truth
        for attacker in truth.malicious_ids:
            count = sum(
                1 for a in truth.sybil_to_attacker.values() if a == attacker
            )
            assert 3 <= count <= 6


class TestHighwaySimulator:
    def test_recorded_nodes_are_normal(self, small_run):
        for node in small_run.recorded_nodes:
            assert node in small_run.truth.normal_ids

    def test_observations_only_for_recorded(self, small_run):
        assert set(small_run.observations) == set(small_run.recorded_nodes)

    def test_series_are_time_ordered(self, small_run):
        for node in small_run.recorded_nodes:
            for series in small_run.series_at(node).values():
                times = series.timestamps
                assert np.all(np.diff(times) >= 0)

    def test_rssi_values_above_sensitivity(self, small_run):
        for node in small_run.recorded_nodes:
            for series in small_run.series_at(node).values():
                assert np.all(series.values >= -95.0 - 0.5)

    def test_sybil_identities_heard(self, small_run):
        heard = set()
        for node in small_run.recorded_nodes:
            heard |= set(small_run.series_at(node))
        assert heard & small_run.truth.sybil_ids

    def test_no_self_observation(self, small_run):
        for node in small_run.recorded_nodes:
            assert node not in small_run.series_at(node)

    def test_deterministic_for_seed(self):
        a = HighwaySimulator(SMALL, recorded_nodes=2).run()
        b = HighwaySimulator(SMALL, recorded_nodes=2).run()
        assert a.recorded_nodes == b.recorded_nodes
        node = a.recorded_nodes[0]
        for identity in a.series_at(node):
            assert np.allclose(
                a.series_at(node)[identity].values,
                b.series_at(node)[identity].values,
            )

    def test_claimed_vs_true_position_for_sybil(self, small_run):
        truth = small_run.truth
        sybil = next(iter(truth.sybil_ids))
        claimed = small_run.claimed_position(sybil, 10.0)
        true = small_run.true_position(sybil, 10.0)
        assert np.hypot(claimed[0] - true[0], claimed[1] - true[1]) >= 25.0

    def test_claimed_equals_true_for_normal(self, small_run):
        normal = small_run.recorded_nodes[0]
        assert small_run.claimed_position(normal, 5.0) == small_run.true_position(
            normal, 5.0
        )

    def test_unknown_identity_raises(self, small_run):
        with pytest.raises(KeyError):
            small_run.claimed_position("ghost", 1.0)
        with pytest.raises(KeyError):
            small_run.series_at("ghost")

    def test_model_change_recorded(self):
        from dataclasses import replace

        config = replace(SMALL, model_change_enabled=True, sim_time_s=65.0)
        result = HighwaySimulator(config, recorded_nodes=2).run()
        # Initial model + changes at 30 s and 60 s.
        assert len(result.model_timeline) == 3

    def test_static_model_single_entry(self, small_run):
        assert len(small_run.model_timeline) == 1

    def test_loss_rate_bounded(self, small_run):
        assert 0.0 <= small_run.loss_rate < 1.0


class TestFieldTest:
    @pytest.fixture(scope="class")
    def drive(self):
        return run_field_test(
            FieldTestConfig(environment="campus", duration_s=60.0, seed=3)
        )

    def test_observers_are_normal_nodes(self, drive):
        assert set(drive.observations) == set(NORMAL_IDS)

    def test_six_identities_on_air(self, drive):
        heard = set()
        for node in NORMAL_IDS:
            heard |= set(drive.observations[node])
        assert MALICIOUS_ID in heard
        assert set(SYBIL_IDS) <= heard

    def test_truth_structure(self, drive):
        assert drive.truth.malicious_ids == {MALICIOUS_ID}
        assert drive.truth.sybil_ids == set(SYBIL_IDS)

    def test_sybil_series_track_malicious(self, drive):
        """Observation 3 at the signal level: same-radio streams are
        strongly correlated at a recording node."""
        series_map = drive.observations["3"]
        mal = series_map[MALICIOUS_ID]
        syb = series_map[SYBIL_IDS[0]]
        n = min(len(mal), len(syb))
        assert n > 100
        corr = np.corrcoef(mal.values[:n], syb.values[:n])[0, 1]
        assert corr > 0.5

    def test_custom_attacker(self):
        attacker = SybilAttacker(
            node_id=MALICIOUS_ID,
            own_power=ConstantPower(20.0),
            identities=[
                SybilIdentity("666", PerPacketRandomPower(14, 26), (40.0, 0.0))
            ],
        )
        result = run_field_test(
            FieldTestConfig(environment="campus", duration_s=30.0, seed=4),
            attacker=attacker,
        )
        assert result.truth.sybil_ids == {"666"}

    def test_custom_attacker_wrong_id_rejected(self):
        attacker = SybilAttacker(
            node_id="999", own_power=ConstantPower(20.0), identities=[]
        )
        with pytest.raises(ValueError):
            run_field_test(
                FieldTestConfig(duration_s=30.0), attacker=attacker
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FieldTestConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            FieldTestConfig(sybil_powers_dbm=(20.0,))
