"""Unit tests for the Sybil attack models."""

import numpy as np
import pytest

from repro.attack.sybil import (
    ConstantPower,
    PerPacketRandomPower,
    RandomWalkPower,
    SybilAttacker,
    SybilIdentity,
)


class TestPowerPolicies:
    def test_constant(self):
        rng = np.random.default_rng(0)
        policy = ConstantPower(21.5)
        assert policy.power_dbm(0.0, rng) == 21.5
        assert policy.power_dbm(99.0, rng) == 21.5

    def test_per_packet_random_in_range(self):
        rng = np.random.default_rng(1)
        policy = PerPacketRandomPower(17.0, 23.0)
        draws = [policy.power_dbm(t, rng) for t in range(200)]
        assert all(17.0 <= d <= 23.0 for d in draws)
        assert np.std(draws) > 1.0  # actually varies

    def test_per_packet_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            PerPacketRandomPower(23.0, 17.0)

    def test_random_walk_bounded(self):
        rng = np.random.default_rng(2)
        policy = RandomWalkPower(initial_dbm=20.0, step_db=2.0, low_dbm=18.0, high_dbm=22.0)
        draws = [policy.power_dbm(t, rng) for t in range(100)]
        assert all(18.0 <= d <= 22.0 for d in draws)

    def test_random_walk_validation(self):
        with pytest.raises(ValueError):
            RandomWalkPower(initial_dbm=50.0)
        with pytest.raises(ValueError):
            RandomWalkPower(initial_dbm=20.0, step_db=-1.0)


class TestSybilIdentity:
    def test_claimed_position_offset(self):
        identity = SybilIdentity("s", ConstantPower(20.0), (50.0, -2.0))
        assert identity.claimed_position((100.0, 3.0)) == (150.0, 1.0)


class TestSybilAttacker:
    def test_generate_count_in_range(self):
        for seed in range(12):
            attacker = SybilAttacker.generate(
                "mal", np.random.default_rng(seed), n_sybils_range=(3, 6)
            )
            assert 3 <= len(attacker.identities) <= 6

    def test_identities_unique(self):
        attacker = SybilAttacker.generate("mal", np.random.default_rng(0))
        assert len(set(attacker.all_ids)) == len(attacker.all_ids)

    def test_all_ids_include_own(self):
        attacker = SybilAttacker.generate("mal", np.random.default_rng(1))
        assert attacker.all_ids[0] == "mal"
        assert set(attacker.sybil_ids) == set(attacker.all_ids[1:])

    def test_powers_in_range(self):
        rng = np.random.default_rng(3)
        attacker = SybilAttacker.generate(
            "mal", rng, power_range_dbm=(17.0, 23.0)
        )
        for sybil in attacker.identities:
            power = sybil.power.power_dbm(0.0, rng)
            assert 17.0 <= power <= 23.0

    def test_claimed_offsets_respect_standoff(self):
        rng = np.random.default_rng(4)
        attacker = SybilAttacker.generate(
            "mal",
            rng,
            claimed_offset_range_m=150.0,
            min_claimed_offset_m=30.0,
        )
        for sybil in attacker.identities:
            assert 30.0 <= abs(sybil.claimed_offset[0]) <= 150.0

    def test_smart_power_uses_per_packet_policy(self):
        attacker = SybilAttacker.generate(
            "mal", np.random.default_rng(5), smart_power=True
        )
        assert all(
            isinstance(s.power, PerPacketRandomPower) for s in attacker.identities
        )

    def test_rejects_bad_count_range(self):
        with pytest.raises(ValueError):
            SybilAttacker.generate(
                "mal", np.random.default_rng(6), n_sybils_range=(0, 2)
            )
