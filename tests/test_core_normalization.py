"""Unit tests for repro.core.normalization."""

import numpy as np
import pytest

from repro.core.normalization import (
    enhanced_zscore,
    minmax,
    minmax_distances,
    zscore,
    zscore_series,
)
from repro.core.timeseries import RSSITimeSeries


class TestZScore:
    def test_zero_mean(self):
        values = np.array([-70.0, -75.0, -80.0, -72.0])
        out = zscore(values)
        assert np.mean(out) == pytest.approx(0.0, abs=1e-12)

    def test_unit_sigma_with_multiplier_one(self):
        rng = np.random.default_rng(0)
        out = zscore(rng.normal(-70, 5, size=500), sigma_multiplier=1.0)
        assert np.std(out) == pytest.approx(1.0, abs=1e-9)

    def test_enhanced_divides_by_three_sigma(self):
        values = np.array([-70.0, -75.0, -80.0])
        assert np.allclose(enhanced_zscore(values) * 3.0, zscore(values, 1.0))

    def test_enhanced_bounds_gaussianlike_data(self):
        rng = np.random.default_rng(1)
        out = enhanced_zscore(rng.normal(-70, 3, size=1000))
        assert np.mean(np.abs(out) < 1.0) > 0.99

    def test_constant_series_maps_to_zero(self):
        out = zscore(np.full(10, -80.0))
        assert np.all(out == 0.0)

    def test_empty_input(self):
        assert zscore(np.array([])).size == 0

    def test_shift_invariance(self):
        """The property Eq. 7 exists for: constant power offsets vanish."""
        rng = np.random.default_rng(2)
        base = rng.normal(-70, 4, size=100)
        assert np.allclose(enhanced_zscore(base), enhanced_zscore(base + 6.0))

    def test_scale_invariance(self):
        rng = np.random.default_rng(3)
        base = rng.normal(0, 4, size=100)
        assert np.allclose(zscore(base), zscore(base * 2.5))

    def test_rejects_bad_multiplier(self):
        with pytest.raises(ValueError):
            zscore(np.array([1.0, 2.0]), sigma_multiplier=0.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            zscore(np.zeros((2, 2)))


class TestZScoreSeries:
    def test_preserves_timestamps_and_identity(self):
        series = RSSITimeSeries.from_values("id7", [-70, -75, -80])
        out = zscore_series(series)
        assert out.identity == "id7"
        assert np.allclose(out.timestamps, series.timestamps)
        assert np.mean(out.values) == pytest.approx(0.0, abs=1e-12)


class TestMinMax:
    def test_range(self):
        out = minmax(np.array([3.0, 1.0, 2.0]))
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_order_preserved(self):
        values = np.array([5.0, 1.0, 3.0])
        out = minmax(values)
        assert np.all(np.argsort(out) == np.argsort(values))

    def test_constant_maps_to_zero(self):
        assert np.all(minmax(np.full(4, 2.0)) == 0.0)

    def test_empty(self):
        assert minmax(np.array([])).size == 0

    def test_single_value(self):
        assert minmax(np.array([7.0]))[0] == 0.0


class TestMinMaxDistances:
    def test_mapping_normalised(self):
        distances = {("a", "b"): 2.0, ("a", "c"): 6.0, ("b", "c"): 4.0}
        out = minmax_distances(distances)
        assert out[("a", "b")] == 0.0
        assert out[("a", "c")] == 1.0
        assert out[("b", "c")] == pytest.approx(0.5)

    def test_empty_mapping(self):
        assert minmax_distances({}) == {}

    def test_forced_zero_property(self):
        """Eq. 8 always maps the most similar pair to exactly 0."""
        distances = {("a", "b"): 0.9, ("a", "c"): 1.1}
        out = minmax_distances(distances)
        assert min(out.values()) == 0.0
