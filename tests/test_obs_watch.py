"""Tests for repro.obs.watch and repro.obs.report — the dashboard and
the static end-of-run report."""

import io
import json

import pytest

from repro.obs.report import (
    build_report,
    render_html,
    render_markdown,
    write_report,
)
from repro.obs.tsdb import TimeSeriesDB
from repro.obs.watch import (
    WatchFrame,
    load_frame,
    render_dashboard,
    run_watch,
)


def _snapshot_line(t, near_miss_rate):
    return json.dumps(
        {
            "type": "snapshot",
            "t": t,
            "counters": {},
            "gauges": {"rate.margin_near_miss_rate": near_miss_rate},
            "histograms": {},
        }
    )


def _populated_store():
    store = TimeSeriesDB()
    for tick in range(12):
        t = float(tick)
        store.record("phase.detect.p50", 2.0 + tick * 0.1, t=t)
        store.record("phase.detect.p99", 5.0 + tick * 0.2, t=t)
        store.record("rate.beacons_per_s", 100.0 - tick, t=t)
        store.record("pipeline.margin.signed.tick_mean", 2.0, t=t)
        store.record("drift.margin_mean.cusum", 0.1 * tick, t=t)
        store.record("drift.margin_mean.page_hinkley", 0.05 * tick, t=t)
        store.record("slo.band.burn_short", 2.0, t=t)
        store.record("slo.band.burn_long", 1.5, t=t)
    return store


class TestLoadFrame:
    def test_tsdb_dump_loads_verbatim(self, tmp_path):
        store = _populated_store()
        path = tmp_path / "run.tsdb.jsonl"
        store.dump_jsonl(str(path))
        frame = load_frame(str(path))
        assert frame.kind == "tsdb"
        assert frame.source == str(path)
        assert frame.tsdb.snapshot() == store.snapshot()
        assert frame.status == "n/a"

    def test_snapshot_log_replays_drift(self, tmp_path):
        # 16 calm ticks warm the detectors up; 14 shifted ticks then
        # trip CUSUM during the replay, so a recorded run's alerts are
        # recomputed rather than lost.
        lines = [_snapshot_line(float(t), 0.1) for t in range(16)]
        lines += [_snapshot_line(float(16 + t), 5.0) for t in range(14)]
        path = tmp_path / "snapshots.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        frame = load_frame(str(path))
        assert frame.kind == "snapshots"
        assert frame.status == "alert"
        assert any(
            alert["kind"] == "metric_drift" for alert in frame.alerts
        )
        assert frame.tsdb.latest("rate.margin_near_miss_rate") == 5.0

    def test_non_snapshot_records_are_skipped(self, tmp_path):
        lines = ['{"type": "snapshot_meta", "pid": 1}']
        lines += [_snapshot_line(float(t), 0.1) for t in range(3)]
        path = tmp_path / "snapshots.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        frame = load_frame(str(path))
        assert frame.tsdb.samples == 3

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            load_frame(str(path))

    def test_unrecognised_header_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"type": "mystery"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="unrecognised record type"):
            load_frame(str(path))

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_frame(str(tmp_path / "nope.jsonl"))


class TestRenderDashboard:
    def test_sections_and_burn_marker(self):
        frame = WatchFrame(
            source="run.tsdb.jsonl",
            kind="tsdb",
            tsdb=_populated_store(),
            status="ok",
        )
        text = render_dashboard(frame)
        assert "repro watch — run.tsdb.jsonl" in text
        assert "status=ok" in text
        assert "phase latency (ms)" in text
        assert "detect" in text
        assert "throughput (/s)" in text
        assert "beacons" in text
        assert "verdict health" in text
        assert "margin mean" in text
        assert "drift scores" in text
        assert "SLO burn" in text
        # short=2.0x and long=1.5x budget: both burning.
        assert "** BURN **" in text

    def test_no_burn_marker_when_long_window_is_calm(self):
        store = TimeSeriesDB()
        store.record("slo.band.burn_short", 2.0, t=0.0)
        store.record("slo.band.burn_long", 0.5, t=0.0)
        frame = WatchFrame(source="s", kind="live", tsdb=store)
        assert "** BURN **" not in render_dashboard(frame)

    def test_alert_tail_is_capped(self):
        alerts = [
            {"kind": "metric_drift", "t": float(n), "message": f"alert {n}"}
            for n in range(11)
        ]
        frame = WatchFrame(
            source="s", kind="live", tsdb=TimeSeriesDB(), alerts=alerts
        )
        text = render_dashboard(frame)
        assert "alerts (11)" in text
        assert "alert 10" in text
        assert "alert 2" not in text
        assert "3 earlier alert(s) not shown" in text

    def test_live_frame_without_alerts_says_none(self):
        frame = WatchFrame(source="s", kind="live", tsdb=TimeSeriesDB())
        assert "none" in render_dashboard(frame)


class TestRunWatch:
    def test_once_renders_without_ansi(self, tmp_path):
        path = tmp_path / "run.tsdb.jsonl"
        _populated_store().dump_jsonl(str(path))
        out = io.StringIO()
        text = run_watch(str(path), once=True, out=out)
        assert "phase latency" in text
        assert out.getvalue() == text + "\n"
        assert "\x1b" not in out.getvalue()

    def test_follow_mode_clears_between_frames(self, tmp_path):
        path = tmp_path / "run.tsdb.jsonl"
        _populated_store().dump_jsonl(str(path))
        out = io.StringIO()
        sleeps = []
        run_watch(
            str(path),
            interval_s=0.5,
            out=out,
            max_frames=2,
            sleep=sleeps.append,
        )
        assert out.getvalue().count("\x1b[2J") == 2
        assert sleeps == [0.5]

    def test_follow_mode_waits_for_live_source(self):
        out = io.StringIO()
        text = run_watch(
            "http://127.0.0.1:1",  # connection refused immediately
            interval_s=0.1,
            out=out,
            max_frames=1,
            sleep=lambda _s: None,
        )
        assert "waiting for http://127.0.0.1:1" in text

    def test_once_propagates_live_errors(self):
        with pytest.raises(OSError):
            run_watch("http://127.0.0.1:1", once=True, out=io.StringIO())

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            run_watch("whatever", interval_s=0.0)


class _FakeDrift:
    def __init__(self, alerts, slos=()):
        self.alerts = alerts
        self.slos = slos


class TestBuildReport:
    def test_tsdb_only(self):
        doc = build_report(tsdb=_populated_store(), title="t")
        assert doc["title"] == "t"
        assert doc["samples"] == _populated_store().samples
        titles = [group["title"] for group in doc["series_groups"]]
        assert titles == [
            "Phase latency",
            "Verdict health",
            "Throughput",
            "Drift",
            "SLO burn",
        ]
        assert doc["alerts"] == []
        assert "status" not in doc

    def test_drift_without_health_sets_status(self):
        alert = {"kind": "slo_burn", "t": 1.0, "message": "m"}
        doc = build_report(drift=_FakeDrift([alert]))
        assert doc["status"] == "alert"
        assert doc["alerts"] == [alert]
        assert build_report(drift=_FakeDrift([]))["status"] == "ok"

    def test_invalid_audit_bundles_degrade_to_no_rows(self):
        doc = build_report(audit_bundles=[{"pairs": []}])
        assert doc.get("near_misses", []) == []

    def test_near_misses_from_bundles(self):
        bundles = [
            {
                "timestamp": 30.0,
                "pairs": [
                    {
                        "a": "v0",
                        "b": "v1",
                        "margin": 0.02,
                        "flagged": False,
                        "provenance": "computed",
                    },
                    {
                        "a": "v0",
                        "b": "v2",
                        "margin": 1.5,
                        "flagged": False,
                        "provenance": "computed",
                    },
                ],
            }
        ]
        doc = build_report(audit_bundles=bundles)
        pairs = [row["pair"] for row in doc["near_misses"]]
        assert pairs[0] == "v0 × v1"  # closest to its threshold first

    def test_history_groups_by_artifact(self, tmp_path):
        path = tmp_path / "history.jsonl"
        entries = [
            {"artifact": "BENCH_watch.json", "ts": "a",
             "metrics": {"timing.overhead_pct": 1.0}},
            {"artifact": "BENCH_watch.json", "ts": "b",
             "metrics": {"timing.overhead_pct": 2.0}},
            {"artifact": "BENCH_audit.json", "ts": "b",
             "metrics": {"overhead.pct": 3.0}},
            {"not-an-entry": True},
        ]
        path.write_text(
            "".join(json.dumps(entry) + "\n" for entry in entries),
            encoding="utf-8",
        )
        doc = build_report(history_path=str(path))
        by_name = {row["artifact"]: row for row in doc["history"]}
        assert set(by_name) == {"BENCH_watch.json", "BENCH_audit.json"}
        metric = by_name["BENCH_watch.json"]["metrics"][0]
        assert metric["name"] == "timing.overhead_pct"
        assert metric["values"] == [1.0, 2.0]
        assert metric["latest"] == 2.0

    def test_missing_history_file_degrades(self, tmp_path):
        doc = build_report(history_path=str(tmp_path / "nope.jsonl"))
        assert doc["history"] == []


class TestRendering:
    def _doc(self):
        return build_report(
            tsdb=_populated_store(),
            drift=_FakeDrift(
                [
                    {
                        "kind": "metric_drift",
                        "t": 3.0,
                        "value": 9.0,
                        "threshold": 6.0,
                        "message": "CUSUM drift on <margin_mean>",
                    }
                ]
            ),
            title="acceptance <run>",
        )

    def test_html_is_self_contained_and_escaped(self):
        html_text = render_html(self._doc())
        assert html_text.startswith("<!doctype html>")
        assert "acceptance &lt;run&gt;" in html_text
        assert "CUSUM drift on &lt;margin_mean&gt;" in html_text
        assert "<svg" in html_text
        assert "phase.detect.p99" in html_text

    def test_markdown_tables(self):
        markdown = render_markdown(self._doc())
        assert markdown.startswith("# acceptance <run>")
        assert "| series | latest | min | max | trajectory |" in markdown
        assert "## Alerts (1)" in markdown
        assert "metric_drift" in markdown

    def test_history_renders_in_both_formats(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(
                {"artifact": "BENCH_watch.json", "ts": "x",
                 "metrics": {"timing.overhead_pct": 1.25}}
            )
            + "\n",
            encoding="utf-8",
        )
        doc = build_report(history_path=str(path))
        assert "Benchmark history: BENCH_watch.json" in render_html(doc)
        assert "Benchmark history: BENCH_watch.json" in render_markdown(doc)


class TestWriteReport:
    def test_extension_selects_format(self, tmp_path):
        html_path = write_report(
            str(tmp_path / "run.html"), tsdb=_populated_store()
        )
        assert open(html_path, encoding="utf-8").read().startswith(
            "<!doctype html>"
        )
        md_path = write_report(
            str(tmp_path / "run.md"), tsdb=_populated_store()
        )
        assert open(md_path, encoding="utf-8").read().startswith("# ")

    def test_never_clobbers(self, tmp_path):
        base = str(tmp_path / "run.md")
        first = write_report(base, title="first")
        second = write_report(base, title="second")
        assert first == base
        assert second == base + ".1"
        assert "first" in open(first, encoding="utf-8").read()
        assert "second" in open(second, encoding="utf-8").read()
