"""Tests for repro.obs.lineage + traceview — beacon-to-verdict tracing.

The contracts under test are the ISSUE's acceptance criteria: every
flagged verdict's trace is retained; its disjoint stage cuts
(``ingest_enqueue + queue_wait + detect``) sum to the published
``ingest_to_verdict_ms`` latency; the correlation id joins the trace
to the matching audit bundle and flight-recorder rows; verdicts stay
byte-identical with tracing on or off; and the disabled path performs
exactly zero trace-context allocations per beacon.
"""

import json
from collections import defaultdict

import pytest

from repro.obs import audit as audit_mod
from repro.obs.flightrec import FlightRecorder, set_default_recorder
from repro.obs.lineage import (
    Lineage,
    TraceContext,
    current_correlation_id,
    default_lineage,
    export_chrome_trace,
    load_lineage,
    restart_in_child,
    start_lineage,
    stop_lineage,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import default_tracer
from repro.obs.traceview import (
    load_header,
    render_waterfall,
    run_trace,
    select_traces,
)
from repro.serve import (
    BeaconEvent,
    DetectionService,
    ServiceConfig,
    synthetic_fleet,
)


class _FakeReport:
    """Just enough of a DetectionReport for Lineage.complete()."""

    def __init__(
        self, flagged=False, margins=None, timestamp=0.0, sybil_ids=()
    ):
        self.sybil_pairs = [("a", "b")] if flagged else []
        self.margins = {} if margins is None else margins
        self.sybil_ids = list(sybil_ids)
        self.timestamp = timestamp
        self.density = 10.0
        self.threshold = 1.0
        self.compared_ids = ["a", "b"]
        self.skipped_ids = []
        self.raw_distances = {("a", "b"): 0.5}


def _completed_ctx(lineage, stages=True):
    ctx = lineage.mint("v1", 0)
    if stages:
        ctx.t_enqueued = ctx.t_submit + 0.001
        ctx.t_dequeued = ctx.t_submit + 0.003
        ctx.t_detect_done = ctx.t_submit + 0.010
    return ctx


FAR = 1e9  # a margin nowhere near the near-miss epsilon


@pytest.fixture
def global_lineage():
    """Process-global lineage (sample=1.0) with full teardown."""
    tracer_was_enabled = default_tracer().enabled
    registry = MetricsRegistry()
    registry.enable()
    lineage = start_lineage(sample=1.0, registry=registry)
    yield lineage
    stop_lineage()
    if not tracer_was_enabled:
        default_tracer().disable()


# ----------------------------------------------------------------------
# Unit: retention, stages, ring bound
# ----------------------------------------------------------------------
class TestLineageUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            Lineage(capacity=0, registry=MetricsRegistry())
        with pytest.raises(ValueError):
            Lineage(sample=1.5, registry=MetricsRegistry())

    def test_correlation_ids_unique(self):
        lineage = Lineage(registry=MetricsRegistry())
        ids = {lineage.mint("v1", 0).correlation_id for _ in range(100)}
        assert len(ids) == 100

    def test_stage_cuts_sum_to_latency(self):
        lineage = Lineage(sample=1.0, registry=MetricsRegistry())
        ctx = _completed_ctx(lineage)
        latency = (ctx.t_detect_done - ctx.t_submit) * 1000.0
        assert lineage.complete(ctx, _FakeReport(), latency) == "sampled"
        [record] = lineage.records
        cuts = record["stages"]
        assert cuts["ingest_enqueue"] == pytest.approx(1.0, abs=1e-6)
        assert cuts["queue_wait"] == pytest.approx(2.0, abs=1e-6)
        assert cuts["detect"] == pytest.approx(7.0, abs=1e-6)
        assert (
            cuts["ingest_enqueue"] + cuts["queue_wait"] + cuts["detect"]
            == pytest.approx(record["latency_ms"], abs=2e-3)
        )

    def test_flagged_always_retained(self):
        lineage = Lineage(sample=0.0, registry=MetricsRegistry())
        ctx = _completed_ctx(lineage)
        reason = lineage.complete(
            ctx, _FakeReport(flagged=True, sybil_ids=["b"]), 10.0
        )
        assert reason == "flagged"
        [record] = lineage.records
        assert record["flagged"] is True
        assert record["sybil_ids"] == ["b"]

    def test_near_miss_retained(self):
        lineage = Lineage(sample=0.0, registry=MetricsRegistry())
        ctx = _completed_ctx(lineage)
        reason = lineage.complete(
            ctx, _FakeReport(margins={("a", "b"): 0.0}), 10.0
        )
        assert reason == "near_miss"

    def test_shed_adjacent_retained(self):
        lineage = Lineage(
            sample=0.0, shed_window_s=30.0, registry=MetricsRegistry()
        )
        lineage.note_shed("v1", 1.0, 1)
        ctx = _completed_ctx(lineage)
        reason = lineage.complete(
            ctx, _FakeReport(margins={("a", "b"): FAR}), 10.0
        )
        assert reason == "shed_adjacent"
        assert lineage.stats()["sheds"] == 1

    def test_uninteresting_sampled_out(self):
        lineage = Lineage(sample=0.0, registry=MetricsRegistry())
        ctx = _completed_ctx(lineage)
        reason = lineage.complete(
            ctx, _FakeReport(margins={("a", "b"): FAR}), 10.0
        )
        assert reason is None
        assert lineage.records == []
        stats = lineage.stats()
        assert stats["completed"] == 1
        assert stats["dropped"] == 1

    def test_ring_bounded_but_lifetime_counted(self):
        lineage = Lineage(
            capacity=4, sample=0.0, registry=MetricsRegistry()
        )
        for _ in range(10):
            lineage.complete(
                _completed_ctx(lineage), _FakeReport(flagged=True), 10.0
            )
        stats = lineage.stats()
        assert stats["retained"] == 4
        assert stats["retained_total"] == 10

    def test_stage_histograms_observed(self):
        registry = MetricsRegistry()
        registry.enable()
        lineage = Lineage(sample=1.0, registry=registry)
        lineage.complete(_completed_ctx(lineage), _FakeReport(), 10.0)
        assert registry.histogram("serve.stage.detect_ms").count == 1
        assert registry.counter("serve.traces.retained").value == 1

    def test_span_listener_folds_substages(self):
        lineage = Lineage(sample=1.0, registry=MetricsRegistry())
        ctx = _completed_ctx(lineage)
        lineage.bind(ctx)

        class _Span:
            def __init__(self, name, duration_ms):
                self.name = name
                self.duration_ms = duration_ms

        lineage.on_span_end(_Span("pairwise_dtw", 2.0))
        lineage.on_span_end(_Span("pairwise_dtw", 0.5))
        lineage.on_span_end(_Span("audit_write", 1.0))
        lineage.on_span_end(_Span("normalise", 9.0))  # not a sub-stage
        lineage.unbind()
        lineage.on_span_end(_Span("pairwise_dtw", 99.0))  # unbound: no-op
        assert ctx.stages["compare"] == pytest.approx(2.5)
        assert ctx.stages["audit_write"] == pytest.approx(1.0)
        assert "normalise" not in ctx.stages

    def test_worker_cell_materialises_lazily(self):
        lineage = Lineage(sample=1.0, registry=MetricsRegistry())
        cell = lineage.register_worker(shard=3)

        class _Event:
            observer = "v7"

        # Worker parks the queue item + dequeue stamp; nothing is
        # allocated until someone asks for the context.
        cell[0] = (_Event(), 1.0, 1.25)
        cell[1] = 2.0
        cell[2] = None
        assert lineage.stats()["minted"] == 0

        ctx = lineage.current()
        assert ctx is not None
        assert lineage.stats()["minted"] == 1
        assert ctx.observer == "v7"
        assert ctx.shard == 3
        assert ctx.t_submit == pytest.approx(1.0)
        assert ctx.t_enqueued == pytest.approx(1.25)
        assert ctx.t_dequeued == pytest.approx(2.0)
        # Second lookup returns the same context, no re-mint.
        assert lineage.current() is ctx
        assert lineage.stats()["minted"] == 1
        # Empty cell (between beacons) yields no context.
        cell[0] = None
        cell[2] = None
        assert lineage.current() is None
        assert lineage.stats()["minted"] == 1


# ----------------------------------------------------------------------
# snapshot()/merge() folding (eval.parallel workers)
# ----------------------------------------------------------------------
class TestSnapshotMerge:
    def test_roundtrip_counters_and_records(self):
        worker = Lineage(sample=0.0, registry=MetricsRegistry())
        worker.note_shed("v1", 0.0, 1)
        worker.complete(
            _completed_ctx(worker), _FakeReport(flagged=True), 10.0
        )
        parent = Lineage(sample=0.0, registry=MetricsRegistry())
        parent.merge(worker.snapshot())
        stats = parent.stats()
        assert stats["minted"] == 1
        assert stats["completed"] == 1
        assert stats["retained"] == 1
        assert stats["sheds"] == 1
        assert parent.records == worker.records

    def test_version_mismatch_rejected(self):
        parent = Lineage(registry=MetricsRegistry())
        with pytest.raises(ValueError, match="version"):
            parent.merge({"version": 99})

    def test_merge_respects_ring_bound(self):
        worker = Lineage(
            capacity=16, sample=0.0, registry=MetricsRegistry()
        )
        for _ in range(8):
            worker.complete(
                _completed_ctx(worker), _FakeReport(flagged=True), 10.0
            )
        parent = Lineage(
            capacity=4, sample=0.0, registry=MetricsRegistry()
        )
        parent.merge(worker.snapshot())
        assert parent.stats()["retained"] == 4
        assert parent.stats()["retained_total"] == 8


# ----------------------------------------------------------------------
# Process-global lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_off_by_default(self):
        assert default_lineage() is None
        assert current_correlation_id() is None

    def test_start_stop_roundtrip(self, global_lineage):
        assert default_lineage() is global_lineage
        # Idempotent: a second start returns the installed instance.
        assert start_lineage(sample=0.5) is global_lineage
        ctx = global_lineage.mint("v1", 0)
        global_lineage.bind(ctx)
        assert current_correlation_id() == ctx.correlation_id
        global_lineage.unbind()
        assert current_correlation_id() is None

    def test_restart_in_child_installs_fresh_ring(self, global_lineage):
        global_lineage.complete(
            _completed_ctx(global_lineage), _FakeReport(flagged=True), 1.0
        )
        child = restart_in_child()
        try:
            assert child is not global_lineage
            assert child.sample == global_lineage.sample
            assert child.capacity == global_lineage.capacity
            assert child.records == []
        finally:
            stop_lineage()
            # Reinstall the fixture's instance so its teardown matches.
            start_lineage(sample=1.0)

    def test_restart_in_child_noop_when_off(self):
        assert restart_in_child() is None


# ----------------------------------------------------------------------
# Dump / load / export
# ----------------------------------------------------------------------
class TestDumpLoadExport:
    def _ring_with_traces(self, n=3):
        lineage = Lineage(sample=0.0, registry=MetricsRegistry())
        for i in range(n):
            ctx = _completed_ctx(lineage)
            ctx.seq = i + 1
            lineage.bind(ctx)
            lineage.on_span_end(
                type("S", (), {"name": "pairwise_dtw", "duration_ms": 1.5})
            )
            lineage.unbind()
            lineage.complete(
                ctx,
                _FakeReport(flagged=True, timestamp=float(i)),
                10.0 + i,
            )
        return lineage

    def test_dump_load_roundtrip(self, tmp_path):
        lineage = self._ring_with_traces()
        path = lineage.dump_jsonl(str(tmp_path / "traces.jsonl"))
        assert load_lineage(path) == lineage.records
        header = load_header(path)
        assert header["retained"] == 3
        assert header["minted"] == 3

    def test_load_rejects_non_lineage_file(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"type": "tsdb"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a lineage dump"):
            load_lineage(str(path))
        with pytest.raises(ValueError, match="not a lineage dump"):
            load_header(str(path))

    def test_chrome_export_shapes(self, tmp_path):
        lineage = self._ring_with_traces(n=2)
        out = tmp_path / "chrome.json"
        n_events = export_chrome_trace(lineage.records, str(out))
        payload = json.loads(out.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert len(events) == n_events
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1  # one observer -> one named thread row
        assert {e["name"] for e in slices} >= {
            "ingest_enqueue", "queue_wait", "detect", "compare",
        }
        detect = next(e for e in slices if e["name"] == "detect")
        compare = next(e for e in slices if e["name"] == "compare")
        # Sub-stage laid inside its detect window.
        assert compare["ts"] >= detect["ts"]
        assert compare["ts"] + compare["dur"] <= detect["ts"] + detect[
            "dur"
        ] + 1e-6


# ----------------------------------------------------------------------
# Service integration (the acceptance criteria)
# ----------------------------------------------------------------------
def _run_fleet(events, shards=2):
    service = DetectionService(
        ServiceConfig(shards=shards), registry=MetricsRegistry()
    )
    sub = service.subscribe("test", depth=65536)
    with service:
        for event in events:
            assert service.submit(event)
        assert service.flush(timeout=120.0)
    return sub.drain()


class TestServiceIntegration:
    def _fleet(self):
        return synthetic_fleet(
            observers=2, legit=3, sybil=2, duration_s=25.0, seed=11
        )

    def test_flagged_traces_retained_and_stage_sums_hold(
        self, global_lineage
    ):
        report_events = _run_fleet(self._fleet())
        flagged = [e for e in report_events if e.report.sybil_pairs]
        assert flagged, "workload produced no flagged verdicts"
        records = global_lineage.records
        by_cid = {r["correlation_id"]: r for r in records}
        assert len(by_cid) == len(records), "correlation ids collided"
        # sample=1.0 -> every completion retained; all flagged present.
        assert sum(r["flagged"] for r in records) == len(flagged)
        for record in records:
            cuts = record["stages"]
            cut_sum = (
                cuts["ingest_enqueue"] + cuts["queue_wait"] + cuts["detect"]
            )
            assert cut_sum == pytest.approx(
                record["latency_ms"], abs=5e-3
            ), record
            assert cuts.get("compare", 0.0) <= cuts["detect"]
        # The published latency is the same measurement.
        latencies = sorted(e.latency_ms for e in report_events)
        recorded = sorted(r["latency_ms"] for r in records)
        assert recorded == pytest.approx(latencies, abs=5e-3)

    def test_verdicts_identical_with_tracing_on_and_off(self):
        events = self._fleet()
        baseline = _run_fleet(events)
        tracer_was_enabled = default_tracer().enabled
        start_lineage(sample=1.0, registry=MetricsRegistry())
        try:
            traced = _run_fleet(events)
        finally:
            stop_lineage()
            if not tracer_was_enabled:
                default_tracer().disable()
        by_observer = defaultdict(list)
        for event in baseline:
            by_observer[event.observer].append(event.report)
        traced_by_observer = defaultdict(list)
        for event in traced:
            traced_by_observer[event.observer].append(event.report)
        assert traced_by_observer == by_observer

    def test_correlation_id_written_into_audit_bundle(
        self, global_lineage
    ):
        audit_mod.start_default(out=None)
        try:
            _run_fleet(self._fleet())
            bundles = audit_mod.default_audit_log().bundles
        finally:
            audit_mod.stop_default()
        bundle_cids = {
            b["correlation_id"]
            for b in bundles
            if b.get("correlation_id")
        }
        flagged_cids = {
            r["correlation_id"]
            for r in global_lineage.records
            if r["flagged"]
        }
        assert flagged_cids, "no flagged traces retained"
        assert flagged_cids <= bundle_cids
        # The audit_write sub-stage came from the detector's span.
        assert any(
            "audit_write" in r["stages"] for r in global_lineage.records
        )

    def test_shed_events_reach_lineage_and_flight_recorder(
        self, tmp_path, global_lineage
    ):
        recorder = FlightRecorder(str(tmp_path / "post_mortem.jsonl"))
        previous = set_default_recorder(recorder)
        try:
            config = ServiceConfig(
                shards=1, queue_depth=2, ingest_policy="shed"
            )
            service = DetectionService(config, registry=MetricsRegistry())
            service.start()
            for i in range(10):
                service.submit(BeaconEvent("v1", "a", i * 0.1, -70.0))
            service.flush(timeout=30.0)
            service.stop()
        finally:
            set_default_recorder(previous)
        assert global_lineage.stats()["sheds"] >= 1
        dump_path = recorder.dump(reason="test")
        rows = [
            json.loads(line)
            for line in open(dump_path, encoding="utf-8")
        ]
        sheds = [r for r in rows if r.get("type") == "shed"]
        assert sheds
        assert sheds[0]["observer"] == "v1"
        assert sheds[0]["seq"] == 1
        assert rows[0]["sheds"] == len(sheds)

    def test_flight_recorder_report_rows_carry_correlation_id(
        self, tmp_path, global_lineage
    ):
        recorder = FlightRecorder(str(tmp_path / "post_mortem.jsonl"))
        ctx = global_lineage.mint("v1", 0)
        global_lineage.bind(ctx)
        try:
            recorder.record_report(
                _FakeReport(
                    flagged=True, margins={("a", "b"): FAR}, timestamp=1.0
                )
            )
        finally:
            global_lineage.unbind()
        recorder.record_report(_FakeReport(timestamp=2.0))

        dump_path = recorder.dump(reason="test")
        rows = [
            json.loads(line)
            for line in open(dump_path, encoding="utf-8")
            if json.loads(line).get("type") == "report"
        ]
        assert rows[0]["correlation_id"] == ctx.correlation_id
        assert "correlation_id" not in rows[1]


class TestZeroCostDisabled:
    def test_disabled_path_allocates_no_trace_contexts(self, monkeypatch):
        assert default_lineage() is None

        def _boom(*args, **kwargs):
            raise AssertionError(
                "TraceContext allocated while lineage is disabled"
            )

        # Guard both construction paths: the public constructor and
        # the lazy worker-side materialisation (which uses __new__).
        monkeypatch.setattr(TraceContext, "__init__", _boom)
        monkeypatch.setattr(TraceContext, "__new__", _boom)
        events = synthetic_fleet(observers=1, duration_s=25.0, seed=3)
        report_events = _run_fleet(events, shards=1)
        assert report_events  # the run really detected something


# ----------------------------------------------------------------------
# traceview (the `repro trace` substrate)
# ----------------------------------------------------------------------
def _fake_trace(cid, latency, flagged=False, near_miss=False):
    return {
        "type": "trace",
        "correlation_id": cid,
        "observer": "v1",
        "seq": 1,
        "shard": 0,
        "reason": "flagged" if flagged else "sampled",
        "flagged": flagged,
        "near_miss": near_miss,
        "latency_ms": latency,
        "wall_submit": 1000.0,
        "t": 20.0,
        "sybil_ids": ["s0"] if flagged else [],
        "stages": {
            "ingest_enqueue": 0.1,
            "queue_wait": latency / 2,
            "detect": latency / 2 - 0.1,
        },
    }


def _write_dump(path, traces):
    header = {
        "type": "lineage",
        "version": 1,
        "minted": len(traces),
        "completed": len(traces),
        "retained": len(traces),
        "retained_total": len(traces),
        "sheds": 0,
        "sample": 1.0,
        "capacity": 512,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for trace in traces:
            handle.write(json.dumps(trace) + "\n")


class TestTraceview:
    def test_select_traces_compose(self):
        traces = [
            _fake_trace("c1", 5.0, flagged=True),
            _fake_trace("c2", 9.0),
            _fake_trace("c3", 7.0, flagged=True),
            _fake_trace("c4", 1.0, near_miss=True),
        ]
        selected, label = select_traces(traces, flagged=True, slowest=1)
        assert [t["correlation_id"] for t in selected] == ["c3"]
        assert label == "slowest flagged"
        selected, _ = select_traces(traces, near_misses=5)
        assert [t["correlation_id"] for t in selected] == ["c4"]

    def test_run_trace_summary_and_follow(self, tmp_path):
        dump = tmp_path / "traces.jsonl"
        _write_dump(dump, [_fake_trace("c1", 5.0, flagged=True)])
        out = run_trace(str(dump))
        assert "minted=1" in out
        assert "c1" in out
        waterfall = run_trace(str(dump), follow="c1")
        assert "queue_wait" in waterfall
        assert "ingest-to-verdict" in waterfall

    def test_follow_unknown_cid_raises(self, tmp_path):
        dump = tmp_path / "traces.jsonl"
        _write_dump(dump, [_fake_trace("c1", 5.0)])
        with pytest.raises(ValueError, match="nope"):
            run_trace(str(dump), follow="nope")

    def test_waterfall_stage_sum_footer(self):
        text = render_waterfall(_fake_trace("c1", 5.0, flagged=True))
        assert "enqueue+wait+detect" in text
        assert "Δ" in text

    def test_audit_join_failure_raises(self, tmp_path):
        dump = tmp_path / "traces.jsonl"
        _write_dump(dump, [_fake_trace("c1", 5.0, flagged=True)])
        audit = tmp_path / "audit.jsonl"
        audit.write_text(
            json.dumps(
                {"type": "detection", "correlation_id": "other"}
            )
            + "\n",
            encoding="utf-8",
        )
        with pytest.raises(RuntimeError, match="audit join FAILED"):
            run_trace(str(dump), flagged=True, audit_path=str(audit))

    def test_audit_join_success_reports_counts(self, tmp_path):
        dump = tmp_path / "traces.jsonl"
        _write_dump(dump, [_fake_trace("c1", 5.0, flagged=True)])
        audit = tmp_path / "audit.jsonl"
        audit.write_text(
            json.dumps({"type": "detection", "correlation_id": "c1"})
            + "\n",
            encoding="utf-8",
        )
        out = run_trace(str(dump), flagged=True, audit_path=str(audit))
        assert "audit join: 1/1" in out
