"""Tests for repro.obs.logging — key=value formatter and configure()."""

import io
import logging

import pytest

from repro.obs.logging import KeyValueFormatter, configure, get_logger


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    """Leave the 'repro' logger exactly as we found it."""
    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers, root.level, root.propagate = saved[0], saved[1], saved[2]


class TestGetLogger:
    def test_prefixes_names(self):
        assert get_logger("core.detector").name == "repro.core.detector"

    def test_accepts_full_names(self):
        assert get_logger("repro.sim").name == "repro.sim"

    def test_empty_name_is_package_root(self):
        assert get_logger().name == "repro"


class TestFormatter:
    def _format(self, msg, extra=None):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, msg, None, None
        )
        for key, value in (extra or {}).items():
            setattr(record, key, value)
        return KeyValueFormatter().format(record)

    def test_core_fields_present(self):
        line = self._format("hello")
        assert "level=INFO" in line
        assert "logger=repro.test" in line
        assert 'msg="hello"' in line
        assert line.startswith("ts=")

    def test_extra_fields_rendered_as_key_value(self):
        line = self._format("detect", extra={"pairs": 28, "flagged": 2})
        assert "pairs=28" in line
        assert "flagged=2" in line

    def test_strings_with_spaces_are_quoted(self):
        line = self._format("x", extra={"env": "urban canyon"})
        assert 'env="urban canyon"' in line

    def test_floats_are_compact(self):
        line = self._format("x", extra={"ratio": 22.144532419705328})
        assert "ratio=22.1445" in line

    def test_single_line_output(self):
        line = self._format("x", extra={"n": 1})
        assert "\n" not in line


class TestConfigure:
    def test_installs_handler_and_level(self):
        stream = io.StringIO()
        root = configure(level="DEBUG", stream=stream)
        get_logger("test").debug("visible")
        assert root.level == logging.DEBUG
        assert 'msg="visible"' in stream.getvalue()

    def test_reconfigure_does_not_duplicate_handlers(self):
        stream = io.StringIO()
        configure(level="INFO", stream=stream)
        configure(level="INFO", stream=stream)
        get_logger("test").info("once")
        assert stream.getvalue().count('msg="once"') == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        configure(level="WARNING", stream=stream)
        get_logger("test").info("hidden")
        get_logger("test").warning("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            configure(level="LOUD")
