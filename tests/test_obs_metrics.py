"""Tests for repro.obs.metrics — counters, gauges, histograms, export."""

import io
import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry, default_registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        n_threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread


class TestGauge:
    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge("g").value is None

    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_empty_summary(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary["count"] == 0
        assert summary["sum"] == 0.0
        for key in ("mean", "min", "max", "p50", "p95", "p99"):
            assert summary[key] is None

    def test_empty_percentile_is_none(self):
        assert MetricsRegistry().histogram("h").percentile(50) is None

    def test_single_sample_percentiles(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(7.0)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == 7.0
        assert summary["p50"] == summary["p95"] == summary["p99"] == 7.0

    def test_percentiles_nearest_rank(self):
        histogram = MetricsRegistry().histogram("h")
        for v in range(1, 101):  # 1..100
            histogram.observe(float(v))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) == 1.0

    def test_percentile_range_validated(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.percentile(101)
        with pytest.raises(ValueError):
            histogram.percentile(-1)

    def test_summary_stats(self):
        histogram = MetricsRegistry().histogram("h")
        for v in (1.0, 2.0, 3.0):
            histogram.observe(v)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0


class TestHistogramReservoir:
    def test_uncapped_by_default(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.max_samples is None
        for v in range(1000):
            histogram.observe(float(v))
        assert histogram.samples_kept == 1000

    def test_below_cap_percentiles_are_exact(self):
        histogram = MetricsRegistry().histogram("h", max_samples=200)
        for v in range(1, 101):
            histogram.observe(float(v))
        assert histogram.samples_kept == 100
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(99) == 99.0

    def test_above_cap_count_sum_min_max_stay_exact(self):
        histogram = MetricsRegistry().histogram("h", max_samples=64)
        n = 10_000
        for v in range(1, n + 1):
            histogram.observe(float(v))
        assert histogram.samples_kept == 64
        summary = histogram.summary()
        assert summary["count"] == n
        assert summary["sum"] == n * (n + 1) / 2
        assert summary["min"] == 1.0
        assert summary["max"] == float(n)
        assert summary["mean"] == pytest.approx((n + 1) / 2)

    def test_above_cap_percentiles_are_estimates_in_range(self):
        histogram = MetricsRegistry().histogram("h", max_samples=256)
        for v in range(1, 10_001):
            histogram.observe(float(v))
        # Algorithm R keeps a uniform sample, so the median estimate
        # lands near the true median — well within the sampled range.
        p50 = histogram.percentile(50)
        assert 1.0 <= p50 <= 10_000.0
        assert abs(p50 - 5000.0) / 5000.0 < 0.5

    def test_reservoir_is_deterministic_per_name(self):
        def fill(registry):
            histogram = registry.histogram("h", max_samples=16)
            for v in range(1000):
                histogram.observe(float(v))
            return histogram.summary()

        assert fill(MetricsRegistry()) == fill(MetricsRegistry())

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", max_samples=0)

    def test_registry_default_cap_applies_to_new_histograms(self):
        registry = MetricsRegistry(histogram_max_samples=32)
        assert registry.histogram("h").max_samples == 32
        # An explicit per-histogram cap wins over the registry default.
        assert registry.histogram("h2", max_samples=8).max_samples == 8


class TestRegistry:
    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(10)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        assert registry.counter("c").value == 0.0
        assert registry.gauge("g").value is None
        assert registry.histogram("h").count == 0

    def test_enable_disable_roundtrip(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc()
        registry.enable()
        counter.inc()
        registry.disable()
        counter.inc()
        assert counter.value == 1.0

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snapshot = registry.to_dict()
        assert snapshot["counters"] == {"c": 2.0}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        # Must round-trip through JSON untouched.
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_write_jsonl(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        buffer = io.StringIO()
        n = registry.write_jsonl(buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert n == len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {r["type"] for r in records} == {"counter", "histogram"}
        assert all("name" in r for r in records)

    def test_write_jsonl_to_path(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        path = tmp_path / "metrics.jsonl"
        registry.write_jsonl(str(path))
        [record] = [json.loads(line) for line in path.read_text().splitlines()]
        assert record == {"type": "counter", "name": "c", "value": 3.0}

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.to_dict()["counters"] == {}

    def test_default_registry_is_global_and_disabled(self):
        registry = default_registry()
        assert registry is default_registry()
        assert not registry.enabled


class TestSnapshotMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(2.5)
        for v in (1.0, 2.0, 3.0):
            registry.histogram("h").observe(v)
        return registry

    def test_snapshot_is_json_serialisable(self):
        snapshot = self._populated().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_round_trip(self):
        snapshot = self._populated().snapshot()
        target = MetricsRegistry()
        target.merge(snapshot)
        assert target.counter("c").value == 5.0
        assert target.gauge("g").value == 2.5
        hist = target.histogram("h")
        assert hist.count == 3
        assert hist.summary()["min"] == 1.0
        assert hist.summary()["max"] == 3.0
        assert hist.percentile(50) == 2.0

    def test_counters_add_across_merges(self):
        snapshot = self._populated().snapshot()
        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.merge(snapshot)
        target.merge(snapshot)
        assert target.counter("c").value == 11.0
        assert target.histogram("h").count == 6

    def test_histogram_bounds_combine_exactly(self):
        low = MetricsRegistry()
        low.histogram("h").observe(-4.0)
        high = MetricsRegistry()
        high.histogram("h").observe(9.0)
        target = MetricsRegistry()
        target.histogram("h").observe(1.0)
        target.merge(low.snapshot())
        target.merge(high.snapshot())
        summary = target.histogram("h").summary()
        assert summary["min"] == -4.0
        assert summary["max"] == 9.0
        assert summary["count"] == 3
        assert summary["sum"] == 6.0

    def test_unset_gauge_does_not_clobber(self):
        source = MetricsRegistry()
        source.gauge("g")  # created but never set
        target = MetricsRegistry()
        target.gauge("g").set(7.0)
        target.merge(source.snapshot())
        assert target.gauge("g").value == 7.0

    def test_merge_into_disabled_registry_is_noop(self):
        snapshot = self._populated().snapshot()
        target = MetricsRegistry(enabled=False)
        target.merge(snapshot)
        assert target.to_dict()["counters"] == {}

    def test_version_mismatch_rejected(self):
        snapshot = self._populated().snapshot()
        snapshot["version"] = 999
        with pytest.raises(ValueError, match="snapshot version"):
            MetricsRegistry().merge(snapshot)

    def test_merge_downsamples_past_reservoir_cap(self):
        source = MetricsRegistry()
        for v in range(100):
            source.histogram("h").observe(float(v))
        target = MetricsRegistry()
        capped = target.histogram("h", max_samples=10)
        for v in range(100, 120):
            capped.observe(float(v))
        target.merge(source.snapshot())
        assert capped.count == 120  # exact count survives the cap
        assert capped.samples_kept <= 10

    def test_empty_histogram_merge_creates_instrument_only(self):
        source = MetricsRegistry()
        source.histogram("h")
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.histogram("h").count == 0
