"""Tests for repro.obs.trace — span nesting, export, disabled no-ops."""

import json
import threading

from repro.obs.trace import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    Tracer,
    default_tracer,
)


class TestSpanNesting:
    def test_root_span_has_no_parent(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        with tracer.span("root"):
            pass
        [record] = exporter.records
        assert record["name"] == "root"
        assert record["parent_id"] is None
        assert record["duration_ms"] >= 0.0

    def test_children_point_at_parent_and_share_trace(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        with tracer.span("parent"):
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        by_name = {r["name"]: r for r in exporter.records}
        parent = by_name["parent"]
        assert parent["parent_id"] is None
        assert by_name["child-a"]["parent_id"] == parent["span_id"]
        assert by_name["child-b"]["parent_id"] == parent["span_id"]
        assert by_name["grandchild"]["parent_id"] == by_name["child-a"]["span_id"]
        assert len({r["trace_id"] for r in exporter.records}) == 1
        # Children exported before the parent (they finish first).
        assert [r["name"] for r in exporter.records] == [
            "grandchild", "child-a", "child-b", "parent",
        ]

    def test_sibling_roots_get_distinct_traces(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert len({r["trace_id"] for r in exporter.records}) == 2

    def test_attributes_via_kwargs_and_setter(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        with tracer.span("op", density=40.0) as span:
            span.set_attribute("pairs", 10)
        [record] = exporter.records
        assert record["attributes"] == {"density": 40.0, "pairs": 10}

    def test_exception_is_recorded_and_propagates(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        try:
            with tracer.span("op"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        [record] = exporter.records
        assert record["attributes"]["error"] == "RuntimeError"

    def test_threads_trace_independently(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        barrier = threading.Barrier(2)

        def work(label):
            with tracer.span(label):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Both spans overlap in time yet neither is the other's child.
        assert all(r["parent_id"] is None for r in exporter.records)


class TestDisabledTracer:
    def test_disabled_tracer_exports_nothing(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(enabled=False, exporter=exporter)
        with tracer.span("op") as span:
            span.set_attribute("k", 1)  # must be a harmless no-op
        assert exporter.records == []

    def test_default_tracer_is_global_and_disabled(self):
        tracer = default_tracer()
        assert tracer is default_tracer()
        assert not tracer.enabled

    def test_enable_disable(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(enabled=False)
        tracer.enable(exporter)
        with tracer.span("op"):
            pass
        tracer.disable()
        with tracer.span("op2"):
            pass
        assert [r["name"] for r in exporter.records] == ["op"]


class TestCrashSafeFlush:
    def test_open_spans_listed_innermost_last(self):
        tracer = Tracer(exporter=InMemorySpanExporter())
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert [s.name for s in tracer.open_spans()] == [
                    "outer",
                    "inner",
                ]
        assert tracer.open_spans() == []

    def test_flush_open_exports_partial_records(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        with tracer.span("outer"):
            with tracer.span("inner"):
                n = tracer.flush_open(reason="test-crash")
                assert n == 2
        # Innermost first, mirroring normal finish order.
        partials = exporter.records[:2]
        assert [r["name"] for r in partials] == ["inner", "outer"]
        for record in partials:
            assert record["attributes"]["partial"] is True
            assert record["attributes"]["flush_reason"] == "test-crash"
            assert record["duration_ms"] is not None

    def test_flushed_spans_not_exported_twice(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        with tracer.span("op"):
            tracer.flush_open(reason="crash")
        # The context-manager exit must not re-export the flushed span.
        assert len(exporter.records) == 1

    def test_flush_open_without_exporter_is_noop(self):
        tracer = Tracer()
        with tracer.span("op"):
            assert tracer.flush_open() == 0

    def test_flush_open_with_nothing_open(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        assert tracer.flush_open() == 0
        assert exporter.records == []

    def test_flush_open_covers_other_threads(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        started = threading.Event()
        release = threading.Event()

        def work():
            with tracer.span("worker"):
                started.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=work)
        thread.start()
        started.wait(timeout=5)
        try:
            assert tracer.flush_open(reason="main-crash") == 1
        finally:
            release.set()
            thread.join()
        assert exporter.records[0]["name"] == "worker"
        assert exporter.records[0]["attributes"]["partial"] is True

    def test_context_manager_closes_exporter(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(exporter=JsonlSpanExporter(str(path))) as tracer:
            with tracer.span("done"):
                pass
        [record] = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "done"

    def test_exception_exit_flushes_open_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        try:
            with Tracer(exporter=JsonlSpanExporter(str(path))) as tracer:
                span_cm = tracer.span("interrupted")
                span_cm.__enter__()
                raise KeyboardInterrupt()
        except KeyboardInterrupt:
            pass
        [record] = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "interrupted"
        assert record["attributes"]["partial"] is True
        assert record["attributes"]["flush_reason"] == "exception"


class TestJsonlExporter:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonlSpanExporter(str(path))
        tracer = Tracer(exporter=exporter)
        with tracer.span("detection", density=4.0):
            with tracer.span("normalise"):
                pass
        exporter.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["normalise", "detection"]
        assert records[0]["parent_id"] == records[1]["span_id"]

    def test_close_is_idempotent(self, tmp_path):
        exporter = JsonlSpanExporter(str(tmp_path / "t.jsonl"))
        exporter.close()
        exporter.close()


class TestSpanIdUniqueness:
    def test_concurrent_threads_never_emit_duplicate_span_ids(self):
        """Regression: span ids were a single global counter read with
        ``next()`` — safe under the GIL but a collision risk for the
        serve layer's shard threads on free-threaded builds.  Ids are
        now per-thread (epoch + local counter); hammering one tracer
        from many threads must never produce a duplicate."""
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        n_threads, per_thread = 8, 250
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                with tracer.span("op"):
                    pass

        threads = [
            threading.Thread(target=worker) for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        ids = [record["span_id"] for record in exporter.records]
        assert len(ids) == n_threads * per_thread
        assert len(set(ids)) == len(ids)

    def test_ids_survive_thread_ident_reuse(self):
        """Sequentially spawned threads may reuse OS thread idents; the
        epoch counter must keep their span ids distinct anyway."""
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)

        def one_span():
            with tracer.span("op"):
                pass

        for _ in range(20):
            thread = threading.Thread(target=one_span)
            thread.start()
            thread.join(timeout=10.0)
        ids = {record["span_id"] for record in exporter.records}
        assert len(ids) == 20
