"""Suite-wide fixtures.

The detector's single-writer ownership guard is off by default in
production (one ``threading.get_ident()`` per mutation); the test
suite arms it process-wide so any test — or any code under test, like
the ``repro.serve`` shard workers — that mutates a detector from two
threads fails loudly instead of silently corrupting buffers.
"""

import pytest

from repro.core.detector import set_ownership_guard


@pytest.fixture(autouse=True, scope="session")
def _arm_ownership_guard():
    previous = set_ownership_guard(True)
    yield
    set_ownership_guard(previous)
