"""Tests for ``repro.obs.audit`` — decision provenance and bit-replay.

Covers the off-by-default guarantees (no global log, no provenance
capture, no bundle construction), margin math and the near-miss knob,
window evidence encoding, the ring/stream/dump behaviour of
:class:`AuditLog`, bundle structure for exact / cache-hit / pruned
provenance, the snapshot/merge cross-process folding contract, the
bit-identical replay verification (including tamper detection), the
health monitor's fragile-verdict alert, the snapshotter's near-miss
ratio gauge, and the deterministic ordering of
``DetectionReport.sybil_clusters`` across hash seeds.
"""

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.pairwise import PROV_CACHE, PROV_EXACT
from repro.core.thresholds import ConstantThreshold
from repro.obs.audit import (
    DEFAULT_NEAR_MISS_EPSILON,
    AuditLog,
    decode_window,
    default_audit_log,
    encode_window,
    get_audit_context,
    get_near_miss_epsilon,
    load_audit_log,
    normalised_window,
    replay_pair,
    restart_in_child,
    set_audit_context,
    set_near_miss_epsilon,
    signed_margin,
    start_default,
    stop_default,
    verify_bundle,
    window_digest,
)
from repro.obs.health import HealthMonitor, HealthThresholds
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Snapshotter

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _no_leaked_global_state():
    yield
    stop_default()
    set_audit_context(None, None)
    set_near_miss_epsilon(DEFAULT_NEAR_MISS_EPSILON)


def make_detector(n=6, seed=0, samples=120, **config_kwargs):
    """A loaded detector over random-walk RSSI series (cache-cold)."""
    from repro.core.timeseries import RSSITimeSeries

    rng = np.random.default_rng(seed)
    config = DetectorConfig(observation_time=20.0, **config_kwargs)
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(0.05), config=config
    )
    times = np.linspace(0.0, 20.0, samples)
    for index in range(n):
        series = RSSITimeSeries(f"v{index:02d}")
        rssi = -70.0 + np.cumsum(rng.normal(0.0, 0.8, samples))
        for t, value in zip(times, rssi):
            series.append(float(t), float(value))
        detector.load_series(series)
    return detector


class TestMarginMath:
    def test_signed_margin_is_relative_slack(self):
        assert signed_margin(0.06, 0.05) == pytest.approx(0.2)
        assert signed_margin(0.04, 0.05) == pytest.approx(-0.2)
        assert signed_margin(0.05, 0.05) == 0.0

    def test_zero_threshold_has_no_relative_scale(self):
        assert signed_margin(0.0, 0.0) == 0.0
        assert signed_margin(1e-12, 0.0) == math.inf
        assert signed_margin(-1e-12, 0.0) == -math.inf

    def test_epsilon_knob_validates_and_returns_previous(self):
        assert get_near_miss_epsilon() == DEFAULT_NEAR_MISS_EPSILON
        previous = set_near_miss_epsilon(0.1)
        assert previous == DEFAULT_NEAR_MISS_EPSILON
        assert get_near_miss_epsilon() == 0.1
        with pytest.raises(ValueError):
            set_near_miss_epsilon(0.0)
        with pytest.raises(ValueError):
            set_near_miss_epsilon(-0.01)

    def test_audit_context_round_trips(self):
        assert get_audit_context() == (None, None)
        previous = set_audit_context(observer="v01", period=3)
        assert previous == (None, None)
        assert get_audit_context() == ("v01", 3)


class TestWindowEvidence:
    def test_encode_decode_is_exact(self):
        rng = np.random.default_rng(1)
        values = rng.normal(-70.0, 5.0, 50)
        values[0] = -0.0
        values[1] = 1e-300
        decoded = decode_window(encode_window(values))
        assert decoded.tobytes() == values.astype("<f8").tobytes()

    def test_digest_detects_single_bit_tamper(self):
        values = np.array([1.0, 2.0, 3.0])
        tampered = values.copy()
        tampered[1] = np.nextafter(2.0, 3.0)
        assert window_digest(values) != window_digest(tampered)


class TestOffByDefault:
    def test_no_global_log_until_started(self):
        assert default_audit_log() is None

    def test_detect_does_no_audit_work_when_off(self):
        detector = make_detector()
        report = detector.detect(density=40.0, now=20.0)
        # Margins are pipeline telemetry, always on; provenance capture
        # and bundle construction are audit work, and must not happen.
        assert report.margins
        assert detector._engine is not None
        assert detector._engine.record_provenance is False
        assert detector._engine.last_provenance is None

    def test_restart_in_child_is_noop_when_off(self):
        assert restart_in_child() is None


class TestAuditLogStore:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=0)

    def test_ring_evicts_but_counters_keep_totals(self):
        log = AuditLog(capacity=2)
        for index in range(3):
            log.record_detection(
                {"type": "detection", "n": index, "pairs": [{}, {}]}
            )
        assert [b["n"] for b in log.bundles] == [1, 2]
        assert log.detections == 3
        assert log.pairs_recorded == 6

    def test_stream_claims_indexed_path_lazily(self, tmp_path):
        out = str(tmp_path / "audit.jsonl")
        log = AuditLog(out=out)
        assert log.path is None and not os.path.exists(out)
        log.record_detection({"type": "detection", "pairs": []})
        assert log.path == out
        log.close()
        second = AuditLog(out=out)
        second.record_detection({"type": "detection", "pairs": []})
        assert second.path == out + ".1"
        second.close()

    def test_dump_writes_ring_to_fresh_path(self, tmp_path):
        log = AuditLog()
        log.record_detection({"type": "detection", "n": 1, "pairs": []})
        path = log.dump(str(tmp_path / "ring.jsonl"))
        lines = Path(path).read_text().splitlines()
        assert json.loads(lines[0])["n"] == 1


class TestBundleRecording:
    def test_exact_detection_records_full_evidence(self, tmp_path):
        start_default(out=str(tmp_path / "audit.jsonl"))
        set_audit_context(observer="v00", period=7)
        detector = make_detector()
        report = detector.detect(density=40.0, now=20.0)
        log = stop_default()
        assert log.detections == 1
        (bundle,) = log.bundles
        assert bundle["observer"] == "v00"
        assert bundle["period"] == 7
        assert bundle["threshold"] == report.threshold
        assert bundle["threshold_on"] == "normalized"
        n = len(report.compared_ids)
        assert len(bundle["pairs"]) == n * (n - 1) // 2
        pairs = [(r["a"], r["b"]) for r in bundle["pairs"]]
        assert pairs == sorted(pairs)
        for record in bundle["pairs"]:
            pair = (record["a"], record["b"])
            assert record["provenance"] == PROV_EXACT
            assert record["cache_key"]
            assert record["margin"] == report.margins[pair]
            assert record["raw_distance"] == report.raw_distances[pair]
            assert record["flagged"] == (pair in set(report.sybil_pairs))
        for identity in report.compared_ids:
            series = bundle["series"][identity]
            window = decode_window(series["window_b64"])
            assert window.size == series["len"]
            assert window_digest(window) == series["sha256"]
        # The stream holds the same bundle as one JSON line.
        (loaded,) = load_audit_log(log.path)
        assert loaded["pairs"] == bundle["pairs"]

    def test_second_detect_hits_cache_with_key(self):
        start_default()
        detector = make_detector(pairwise_cache_size=1024)
        detector.detect(density=40.0, now=20.0)
        detector.detect(density=40.0, now=20.0)
        log = stop_default()
        first, second = log.bundles
        assert {r["provenance"] for r in first["pairs"]} == {PROV_EXACT}
        assert {r["provenance"] for r in second["pairs"]} == {PROV_CACHE}
        exact_keys = {(r["a"], r["b"]): r["cache_key"] for r in first["pairs"]}
        for record in second["pairs"]:
            assert record["cache_key"] == exact_keys[(record["a"], record["b"])]

    def test_pruned_pairs_record_their_deciding_bound(self):
        start_default()
        detector = make_detector(
            n=10, pairwise_pruning=True, pairwise_cache_size=0
        )
        detector.detect(density=40.0, now=20.0)
        log = stop_default()
        (bundle,) = log.bundles
        tags = {r["provenance"] for r in bundle["pairs"]}
        assert PROV_EXACT in tags
        pruned = [
            r for r in bundle["pairs"] if r["provenance"].startswith("pruned")
        ]
        assert pruned, "the pruning workload should prune at least one pair"
        for record in pruned:
            assert record["bound"] is not None
            assert record["cache_key"] is None

    def test_store_windows_off_drops_bytes_and_blocks_replay(self):
        start_default(store_windows=False)
        detector = make_detector()
        detector.detect(density=40.0, now=20.0)
        log = stop_default()
        (bundle,) = log.bundles
        identity = bundle["compared"][0]
        assert "window_b64" not in bundle["series"][identity]
        assert "sha256" in bundle["series"][identity]
        with pytest.raises(ValueError, match="without window bytes"):
            normalised_window(bundle, identity)


class TestReplayContract:
    def _one_bundle(self, **config_kwargs):
        start_default()
        detector = make_detector(**config_kwargs)
        detector.detect(density=40.0, now=20.0)
        (bundle,) = stop_default().bundles
        return bundle

    def test_exact_records_replay_bit_identically(self):
        bundle = self._one_bundle()
        results = verify_bundle(bundle)
        assert results
        assert all(r["status"] == "ok" for r in results)

    def test_per_series_zscore_mode_replays_bit_identically(self):
        bundle = self._one_bundle(scale_mode="per-series")
        assert all(r["status"] == "ok" for r in verify_bundle(bundle))

    def test_replay_survives_json_round_trip(self, tmp_path):
        bundle = self._one_bundle()
        path = tmp_path / "audit.jsonl"
        path.write_text(json.dumps(bundle) + "\n")
        (loaded,) = load_audit_log(str(path))
        assert all(r["status"] == "ok" for r in verify_bundle(loaded))

    def test_tampered_distance_is_a_mismatch(self):
        bundle = self._one_bundle()
        victim = bundle["pairs"][0]
        victim["raw_distance"] = np.nextafter(
            victim["raw_distance"], math.inf
        )
        results = verify_bundle(bundle)
        statuses = {(r["pair"]): r["status"] for r in results}
        assert statuses[(victim["a"], victim["b"])] == "MISMATCH"

    def test_tampered_window_bytes_fail_their_digest(self):
        bundle = self._one_bundle()
        identity = bundle["compared"][0]
        series = bundle["series"][identity]
        window = decode_window(series["window_b64"])
        window[0] += 1.0
        series["window_b64"] = encode_window(window)
        with pytest.raises(ValueError, match="SHA-256"):
            replay_pair(bundle, bundle["pairs"][0]["a"], bundle["pairs"][0]["b"])

    def test_non_exact_records_are_skipped(self):
        start_default()
        detector = make_detector(pairwise_cache_size=1024)
        detector.detect(density=40.0, now=20.0)
        detector.detect(density=40.0, now=20.0)
        log = stop_default()
        cached = log.bundles[1]
        results = verify_bundle(cached)
        assert all(r["status"] == "skipped" for r in results)
        assert {r["provenance"] for r in results} == {PROV_CACHE}


class TestSnapshotMerge:
    def test_merge_re_records_and_counts_drops(self, tmp_path):
        worker = AuditLog(capacity=2)
        for index in range(3):  # one bundle ring-evicted in the worker
            worker.record_detection(
                {"type": "detection", "n": index, "pairs": [{}]}
            )
        parent = AuditLog(out=str(tmp_path / "audit.jsonl"))
        parent.merge(worker.snapshot())
        assert parent.detections == 3  # 2 merged + 1 evicted, honestly
        assert parent.pairs_recorded == 2
        assert [b["n"] for b in parent.bundles] == [1, 2]
        parent.close()
        lines = Path(parent.path).read_text().splitlines()
        assert len(lines) == 2  # evidence that survived the worker ring

    def test_merge_rejects_unknown_snapshot_version(self):
        with pytest.raises(ValueError, match="version"):
            AuditLog().merge({"version": 99, "detections": 0, "bundles": []})


class TestLifecycle:
    def test_start_default_is_idempotent(self):
        first = start_default()
        assert start_default() is first
        assert default_audit_log() is first

    def test_stop_default_uninstalls_and_returns(self):
        log = start_default()
        assert stop_default() is log
        assert default_audit_log() is None
        assert stop_default() is None

    def test_restart_in_child_swaps_in_memory_shard(self, tmp_path):
        parent = start_default(
            out=str(tmp_path / "audit.jsonl"), capacity=7, store_windows=False
        )
        child = restart_in_child()
        assert child is not parent
        assert default_audit_log() is child
        assert child.out is None  # never the parent's stream fd
        assert child.capacity == 7
        assert child.store_windows is False


class TestLoadAuditLog:
    def test_malformed_line_error_names_path_and_line(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"type": "detection", "pairs": []}\n{oops\n')
        with pytest.raises(ValueError, match=r"audit\.jsonl:2"):
            load_audit_log(str(path))

    def test_empty_log_is_an_error(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no detection records"):
            load_audit_log(str(path))


class TestFragileVerdictHealth:
    def _report(self, margins):
        detector = make_detector(n=4)
        report = detector.detect(density=40.0, now=20.0)
        report.margins.clear()
        report.margins.update(
            {pair: margin for pair, margin in zip(report.raw_distances, margins)}
        )
        return report

    def test_fragile_rate_alerts_over_the_limit(self):
        monitor = HealthMonitor(
            HealthThresholds.from_spec("fragile_rate=0.25"),
            registry=MetricsRegistry(),
        )
        report = self._report([0.001, -0.002, 0.9, -0.8, 0.7, 0.6])
        monitor.on_report(report, latency_ms=1.0)
        kinds = {alert.kind for alert in monitor.recent_alerts}
        assert "fragile_verdict_rate" in kinds
        assert monitor.status()["status"] == "alert"
        assert monitor.status()["window"]["fragile_verdict_rate"]

    def test_solid_margins_stay_healthy(self):
        monitor = HealthMonitor(
            HealthThresholds.from_spec("fragile_rate=0.25"),
            registry=MetricsRegistry(),
        )
        report = self._report([0.9, -0.8, 0.7, 0.6, -0.9, 0.8])
        monitor.on_report(report, latency_ms=1.0)
        assert not any(
            alert.kind == "fragile_verdict_rate" for alert in monitor.recent_alerts
        )


class TestMarginTelemetry:
    def test_detect_populates_margin_instruments(self):
        registry = MetricsRegistry()
        registry.enable()
        from repro.core.timeseries import RSSITimeSeries

        rng = np.random.default_rng(0)
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(0.05),
            config=DetectorConfig(observation_time=20.0),
            registry=registry,
        )
        times = np.linspace(0.0, 20.0, 120)
        for index in range(5):
            series = RSSITimeSeries(f"v{index:02d}")
            rssi = -70.0 + np.cumsum(rng.normal(0.0, 0.8, 120))
            for t, value in zip(times, rssi):
                series.append(float(t), float(value))
            detector.load_series(series)
        report = detector.detect(density=40.0, now=20.0)
        n_pairs = len(report.raw_distances)
        assert registry.histogram("pipeline.margin.signed").count == n_pairs
        assert registry.histogram("pipeline.margin.abs").count == n_pairs
        near = sum(
            1
            for margin in report.margins.values()
            if abs(margin) < get_near_miss_epsilon()
        )
        assert registry.counter("pipeline.margin.near_miss").value == near

    def test_snapshotter_publishes_near_miss_rate_gauge(self):
        registry = MetricsRegistry()
        near = registry.counter("pipeline.margin.near_miss")
        pairs = registry.counter("detector.pairs_compared")
        snap = Snapshotter(registry)
        snap.tick(now=0.0)
        near.inc(2)
        pairs.inc(8)
        record = snap.tick(now=1.0)
        assert registry.gauge(
            "rate.margin_near_miss_rate"
        ).value == pytest.approx(0.25)
        assert record["counters"]["pipeline.margin.near_miss"]["delta"] == 2.0


class TestSybilClusterDeterminism:
    _SNIPPET = """
import json
from repro.core.detector import DetectionReport

report = DetectionReport(
    timestamp=0.0, density=0.0, threshold=0.0,
    raw_distances={}, distances={},
    sybil_pairs=(("g", "b"), ("b", "a"), ("z", "q"), ("m", "q")),
    sybil_ids=frozenset("gbazqm"),
    compared_ids=tuple("gbazqm"), skipped_ids=(),
)
clusters = [sorted(c) for c in report.sybil_clusters()]
print(json.dumps(clusters))
"""

    def _run(self, hashseed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = str(_REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", self._SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(_REPO_ROOT),
            check=True,
        )
        return result.stdout.strip()

    def test_cluster_order_is_hashseed_independent(self):
        # Union-find over set/dict iteration used to leak hash order
        # into the cluster list; the output must now be identical under
        # different PYTHONHASHSEED values, and deterministic in content.
        out_a = self._run("0")
        out_b = self._run("1")
        assert out_a == out_b
        assert json.loads(out_a) == [["a", "b", "g"], ["m", "q", "z"]]
