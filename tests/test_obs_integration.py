"""Instrumentation wiring: detector, pipeline, and simulators actually
record into injected registries/tracers, and cost nothing by default."""

import numpy as np
import pytest

from repro import obs
from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from repro.core.thresholds import ConstantThreshold
from repro.core.timeseries import RSSITimeSeries
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import InMemorySpanExporter, Tracer
from repro.sim.engine import SimulationEngine
from repro.sim.fieldtest import FieldTestConfig, run_field_test


def _loaded_detector(registry=None, tracer=None, n_series=4, seed=0):
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(0.05),
        config=DetectorConfig(min_samples=20),
        registry=registry,
        tracer=tracer,
    )
    rng = np.random.default_rng(seed)
    for index in range(n_series):
        values = np.cumsum(rng.normal(0.0, 1.0, 120)) - 70.0
        detector.load_series(RSSITimeSeries.from_values(f"n{index}", values))
    return detector


class TestDetectorInstrumentation:
    def test_detect_records_pair_cell_and_latency_metrics(self):
        registry = MetricsRegistry()
        detector = _loaded_detector(registry=registry, n_series=4)
        detector.detect(density=10.0)
        assert registry.counter("detector.pairs_compared").value == 6  # C(4,2)
        assert registry.counter("detector.dtw_cells").value > 0
        assert registry.histogram("detector.detect_ms").count == 1

    def test_observe_counts_beacons_and_evictions(self):
        registry = MetricsRegistry()
        detector = VoiceprintDetector(
            config=DetectorConfig(observation_time=5.0), registry=registry
        )
        for i in range(200):
            detector.observe("a", i * 0.1, -70.0)
        assert registry.counter("detector.beacons_observed").value == 200
        # 20 s of beacons with a 5 s window must have trimmed the buffer.
        assert registry.counter("detector.series_evictions").value > 0

    def test_detection_root_span_has_phase_children(self):
        exporter = InMemorySpanExporter()
        detector = _loaded_detector(
            registry=MetricsRegistry(), tracer=Tracer(exporter=exporter)
        )
        detector.detect(density=10.0)
        [root] = exporter.roots()
        assert root["name"] == "detection"
        children = [c["name"] for c in exporter.children_of(root["span_id"])]
        assert children == ["normalise", "pairwise_dtw", "minmax", "threshold"]
        by_name = {r["name"]: r for r in exporter.records}
        assert by_name["pairwise_dtw"]["attributes"]["pairs"] == 6
        assert by_name["pairwise_dtw"]["attributes"]["cells"] > 0

    def test_default_global_state_records_nothing(self):
        registry = obs.default_registry()
        before = registry.counter("detector.pairs_compared").value
        detector = _loaded_detector()  # defaults to the global registry
        detector.detect(density=10.0)
        assert registry.counter("detector.pairs_compared").value == before


class TestPipelineInstrumentation:
    def _run_pipeline(self, registry, tracer=None):
        pipeline = OnlineVoiceprint(
            max_range_m=500.0,
            threshold=ConstantThreshold(0.05),
            detector_config=DetectorConfig(observation_time=5.0, min_samples=10),
            config=OnlineVoiceprintConfig(
                detection_period_s=5.0, density_period_s=2.0
            ),
            registry=registry,
            tracer=tracer,
        )
        rng = np.random.default_rng(1)
        t = 0.0
        while t < 12.0:
            for identity in ("a", "b", "c"):
                pipeline.on_beacon(identity, t, -70.0 + rng.normal(0, 2))
            t += 0.1
        return pipeline

    def test_periods_density_and_confirmed_recorded(self):
        registry = MetricsRegistry()
        pipeline = self._run_pipeline(registry)
        assert len(pipeline.reports) >= 1
        assert registry.counter("pipeline.detection_periods").value == len(
            pipeline.reports
        )
        assert registry.gauge("pipeline.density_vhls_per_km").value is not None
        assert registry.gauge("pipeline.confirmed_sybils").value is not None

    def test_confirmation_span_emitted(self):
        exporter = InMemorySpanExporter()
        self._run_pipeline(MetricsRegistry(), tracer=Tracer(exporter=exporter))
        assert any(r["name"] == "confirmation" for r in exporter.records)


class TestSimInstrumentation:
    def test_engine_counts_dispatched_events(self):
        registry = MetricsRegistry()
        engine = SimulationEngine(registry=registry)
        fired = []
        engine.schedule_periodic(1.0, fired.append, first_at=0.0)
        cancelled = engine.schedule_at(2.5, fired.append)
        cancelled.cancel()
        engine.run_until(3.0)
        assert len(fired) == 4  # t = 0, 1, 2, 3
        assert registry.counter("sim.events_dispatched").value == 4

    def test_field_test_populates_global_metrics_when_enabled(self):
        registry = obs.default_registry()
        registry.reset()
        registry.enable()
        try:
            run_field_test(
                FieldTestConfig(environment="rural", duration_s=5.0, seed=3)
            )
            assert registry.counter("sim.events_dispatched").value > 0
            assert registry.counter("sim.beacons_delivered").value > 0
            assert registry.gauge("sim.time_ratio").value is not None
        finally:
            registry.disable()
            registry.reset()


class TestConfigureLifecycle:
    def test_configure_enables_and_shutdown_disables(self):
        exporter = InMemorySpanExporter()
        try:
            obs.configure(metrics=True, trace_exporter=exporter)
            assert obs.default_registry().enabled
            assert obs.default_tracer().enabled
        finally:
            obs.shutdown()
            obs.default_registry().reset()
        assert not obs.default_registry().enabled
        assert not obs.default_tracer().enabled
        assert obs.default_tracer().exporter is None


@pytest.mark.parametrize("n_series", [2, 5])
def test_dtw_cells_scale_with_pair_count(n_series):
    registry = MetricsRegistry()
    detector = _loaded_detector(registry=registry, n_series=n_series)
    detector.detect(density=10.0)
    expected_pairs = n_series * (n_series - 1) // 2
    assert registry.counter("detector.pairs_compared").value == expected_pairs
    assert (
        registry.counter("detector.dtw_cells").value
        >= expected_pairs * 120  # at least one full diagonal per pair
    )
