"""Failure-injection tests: the detector under hostile inputs.

A production detector sits on a lossy, adversarial channel; these tests
inject the failure modes a real deployment meets and assert the
detector degrades safely (no crashes, no wild verdicts) rather than
optimally.
"""

import numpy as np
import pytest

from repro.core import ConstantThreshold, DetectorConfig, VoiceprintDetector
from repro.core.pipeline import OnlineVoiceprint
from repro.core.timeseries import RSSITimeSeries


def _sybil_scene(rng, n=200, loss_mask=None):
    """Attacker + 2 Sybil ids + 2 normal ids, optional loss pattern."""
    t = np.arange(n) * 0.1
    shared = -70 + 4 * np.sin(2 * np.pi * t / 13) + np.cumsum(rng.normal(0, 0.4, n))
    streams = {
        "mal": shared + rng.normal(0, 0.3, n),
        "syb1": shared + 3.0 + rng.normal(0, 0.3, n),
        "syb2": shared - 2.0 + rng.normal(0, 0.3, n),
    }
    for name in ("n1", "n2"):
        streams[name] = (
            -74
            + 5 * np.sin(2 * np.pi * t / 9 + rng.uniform(0, 6))
            + np.cumsum(rng.normal(0, 0.5, n))
        )
    series = {}
    for name, values in streams.items():
        keep = np.ones(n, dtype=bool) if loss_mask is None else loss_mask(name, n, rng)
        s = RSSITimeSeries(name)
        for i in np.nonzero(keep)[0]:
            s.append(t[i], float(values[i]))
        series[name] = s
    return series


def _detect(series_map, threshold=0.1, **config):
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(threshold),
        config=DetectorConfig(min_samples=40, **config),
    )
    for series in series_map.values():
        detector.load_series(series)
    return detector.detect(density=10.0)


class TestBurstLoss:
    def test_random_burst_loss_keeps_detection(self):
        rng = np.random.default_rng(0)

        def bursty(name, n, rng_):
            keep = np.ones(n, dtype=bool)
            for _ in range(4):  # four 1.5 s outages at random spots
                start = int(rng_.integers(0, n - 15))
                keep[start : start + 15] = False
            return keep

        report = _detect(_sybil_scene(rng, loss_mask=bursty))
        assert {"mal", "syb1", "syb2"} <= set(report.sybil_ids)

    def test_asymmetric_loss_between_sybil_streams(self):
        """Different packets lost per Sybil stream (the real pattern)."""
        rng = np.random.default_rng(1)

        def independent(name, n, rng_):
            return rng_.uniform(size=n) > 0.25

        report = _detect(_sybil_scene(rng, loss_mask=independent))
        flagged = set(report.sybil_ids)
        assert "mal" in flagged or "syb1" in flagged  # attack still visible

    def test_total_blackout_of_one_identity(self):
        rng = np.random.default_rng(2)

        def blackout(name, n, rng_):
            if name == "syb2":
                keep = np.zeros(n, dtype=bool)
                keep[:30] = True  # below min_samples
                return keep
            return np.ones(n, dtype=bool)

        report = _detect(_sybil_scene(rng, loss_mask=blackout))
        assert "syb2" in report.skipped_ids
        assert {"mal", "syb1"} <= set(report.sybil_ids)


class TestDegenerateSeries:
    def test_constant_series_handled(self):
        rng = np.random.default_rng(3)
        scene = _sybil_scene(rng)
        scene["flat"] = RSSITimeSeries.from_values("flat", [-95.0] * 200)
        report = _detect(scene)
        assert "flat" in report.compared_ids  # compared, not crashed

    def test_two_constant_series_do_not_crash(self):
        scene = {
            "flat1": RSSITimeSeries.from_values("flat1", [-95.0] * 200),
            "flat2": RSSITimeSeries.from_values("flat2", [-95.0] * 200),
        }
        report = _detect(scene)
        assert ("flat1", "flat2") in report.distances

    def test_single_sample_identity_skipped(self):
        rng = np.random.default_rng(4)
        scene = _sybil_scene(rng)
        scene["blip"] = RSSITimeSeries.from_values("blip", [-80.0], start=10.0)
        report = _detect(scene)
        assert "blip" in report.skipped_ids

    def test_extreme_rssi_values(self):
        rng = np.random.default_rng(5)
        scene = _sybil_scene(rng)
        # A buggy driver reporting absurd values must not break anything.
        scene["weird"] = RSSITimeSeries.from_values(
            "weird", list(rng.uniform(-200, 50, 200))
        )
        report = _detect(scene)
        assert "weird" in report.compared_ids


class TestAdversarialTiming:
    def test_identities_with_offset_clocks(self):
        """Sybil streams offset by a second still cluster (band covers it)."""
        rng = np.random.default_rng(6)
        scene = _sybil_scene(rng)
        shifted = RSSITimeSeries("syb1")
        for sample in scene["syb1"]:
            shifted.append(sample.timestamp + 0.4, sample.rssi)
        scene["syb1"] = shifted
        report = _detect(scene)
        assert {"mal", "syb1", "syb2"} <= set(report.sybil_ids)

    def test_out_of_order_beacons_rejected_loudly(self):
        detector = VoiceprintDetector()
        detector.observe("a", 5.0, -70.0)
        with pytest.raises(ValueError, match="out-of-order"):
            detector.observe("a", 4.0, -70.0)


class TestOnlinePipelineRobustness:
    def test_silence_then_burst(self):
        """A pipeline that hears nothing for minutes must not misfire."""
        pipeline = OnlineVoiceprint(
            max_range_m=500.0, threshold=ConstantThreshold(0.05)
        )
        rng = np.random.default_rng(7)
        # One beacon, silence, then a normal stream much later.
        pipeline.on_beacon("a", 0.0, -70.0)
        values = -70 + np.cumsum(rng.normal(0, 0.5, 400))
        for i in range(400):
            pipeline.on_beacon("a", 300.0 + i * 0.1, float(values[i]))
        assert pipeline.confirmed_sybils == frozenset()

    def test_identity_churn(self):
        """Hundreds of one-shot identities (e.g. passing traffic) are
        buffered and skipped without unbounded growth."""
        pipeline = OnlineVoiceprint(
            max_range_m=500.0, threshold=ConstantThreshold(0.05)
        )
        rng = np.random.default_rng(8)
        for i in range(3000):
            t = i * 0.01
            pipeline.on_beacon(f"ghost{i}", t, float(rng.uniform(-95, -60)))
        # No verdicts from single-beacon ghosts.
        assert pipeline.confirmed_sybils == frozenset()
