"""Focused tests for ``repro.io.traces`` — the beacon-log CSV dialect.

``tests/test_io.py`` smoke-tests the happy paths through the package
facade; this file pins down the module's contract in detail: the
quantisation the format applies (microsecond timestamps, milli-dB
RSSI), non-finite values, the row-numbered error messages, stream vs
path targets, and the global time-ordering of merged observation logs.
"""

import io
import math

import pytest

from repro.core.timeseries import RSSITimeSeries
from repro.io.traces import (
    HEADER,
    load_observations,
    load_trace_csv,
    save_observations,
    save_trace_csv,
)


class TestSaveTraceCsv:
    def test_returns_row_count_and_quantises(self, tmp_path):
        path = tmp_path / "trace.csv"
        records = [(1.23456789, "v01", -70.123456), (2.0, "v02", -65.0)]
        assert save_trace_csv(records, path) == 2
        lines = path.read_text().splitlines()
        assert lines[0] == ",".join(HEADER)
        # Timestamps carry 6 decimals, RSSI 3 — the on-disk precision.
        assert lines[1] == "1.234568,v01,-70.123"
        assert lines[2] == "2.000000,v02,-65.000"

    def test_non_finite_rssi_round_trips_through_float(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv([(0.0, "v", math.nan), (1.0, "v", math.inf)], path)
        loaded = load_trace_csv(path)
        assert math.isnan(loaded[0][2])
        assert loaded[1][2] == math.inf

    def test_stream_target_stays_open(self):
        buffer = io.StringIO()
        assert save_trace_csv([(0.0, "v", -70.0)], buffer) == 1
        assert not buffer.closed
        buffer.seek(0)
        assert load_trace_csv(buffer) == [(0.0, "v", -70.0)]


class TestLoadTraceCsv:
    def _write(self, tmp_path, text):
        path = tmp_path / "trace.csv"
        path.write_text(text)
        return path

    def test_round_trip_is_exact_at_format_precision(self, tmp_path):
        path = tmp_path / "trace.csv"
        records = [(0.25, "v01", -70.5), (0.5, "v02", -71.25)]
        save_trace_csv(records, path)
        assert load_trace_csv(path) == records

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = self._write(
            tmp_path,
            "# preamble\ntimestamp,identity,rssi_dbm\n\n"
            "  # indented comment\n1.0,v01,-70.0\n",
        )
        assert load_trace_csv(path) == [(1.0, "v01", -70.0)]

    def test_comment_only_file_is_empty(self, tmp_path):
        path = self._write(tmp_path, "# nothing else\n")
        with pytest.raises(ValueError, match="empty trace file"):
            load_trace_csv(path)

    def test_header_mismatch_reports_both_headers(self, tmp_path):
        path = self._write(tmp_path, "time,id,dbm\n1.0,v,-70.0\n")
        with pytest.raises(ValueError, match="expected"):
            load_trace_csv(path)

    def test_short_row_error_carries_row_number(self, tmp_path):
        path = self._write(
            tmp_path,
            "timestamp,identity,rssi_dbm\n1.0,v01,-70.0\n2.0,v02\n",
        )
        with pytest.raises(ValueError, match="malformed row 3"):
            load_trace_csv(path)

    def test_unparseable_float_error_carries_row_number(self, tmp_path):
        path = self._write(
            tmp_path,
            "timestamp,identity,rssi_dbm\nsoon,v01,-70.0\n",
        )
        with pytest.raises(ValueError, match="malformed row 2"):
            load_trace_csv(path)

    def test_identity_is_kept_verbatim(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv([(0.0, "00:0a:95:9d:68:16", -70.0)], path)
        ((_, identity, _),) = load_trace_csv(path)
        assert identity == "00:0a:95:9d:68:16"


class TestObservations:
    def _series(self, identity, samples):
        series = RSSITimeSeries(identity)
        for t, rssi in samples:
            series.append(t, rssi)
        return series

    def test_merged_log_orders_by_time_then_identity(self, tmp_path):
        path = tmp_path / "obs.csv"
        observations = {
            "v02": self._series("v02", [(0.0, -71.0), (2.0, -72.0)]),
            "v01": self._series("v01", [(0.0, -70.0), (1.0, -70.5)]),
        }
        assert save_observations(observations, path) == 4
        records = load_trace_csv(path)
        assert [(t, i) for t, i, _ in records] == [
            (0.0, "v01"),
            (0.0, "v02"),
            (1.0, "v01"),
            (2.0, "v02"),
        ]

    def test_round_trip_rebuilds_per_identity_series(self, tmp_path):
        path = tmp_path / "obs.csv"
        observations = {
            "v01": self._series("v01", [(0.0, -70.0), (1.0, -70.5)]),
            "v02": self._series("v02", [(0.5, -65.25)]),
        }
        save_observations(observations, path)
        loaded = load_observations(path)
        assert set(loaded) == {"v01", "v02"}
        for identity, series in loaded.items():
            assert series.identity == identity
            original = observations[identity]
            assert list(series.timestamps) == list(original.timestamps)
            assert list(series.values) == list(original.values)
