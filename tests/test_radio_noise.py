"""Unit tests for the correlated noise fields."""

import numpy as np
import pytest

from repro.radio.noise import SpatialNoiseField, ValueNoise3D


class TestValueNoise3D:
    def test_deterministic(self):
        field1 = ValueNoise3D(seed=42)
        field2 = ValueNoise3D(seed=42)
        assert field1.value(3.7, -2.1, 9.9) == field2.value(3.7, -2.1, 9.9)

    def test_seed_changes_field(self):
        a = ValueNoise3D(seed=1)
        b = ValueNoise3D(seed=2)
        values_a = [a.value(x, 0.0, 0.0) for x in range(50)]
        values_b = [b.value(x, 0.0, 0.0) for x in range(50)]
        assert not np.allclose(values_a, values_b)

    def test_batch_matches_scalar(self):
        field = ValueNoise3D(seed=7, scale_x=10, scale_y=10, scale_t=2)
        rng = np.random.default_rng(0)
        xs = rng.uniform(-100, 100, size=40)
        ys = rng.uniform(-100, 100, size=40)
        t = 3.3
        batch = field.value_batch(xs, ys, t)
        scalar = [field.value(float(x), float(y), t) for x, y in zip(xs, ys)]
        assert np.allclose(batch, scalar)

    def test_batch_with_array_time(self):
        field = ValueNoise3D(seed=7)
        xs = np.array([1.0, 2.0, 3.0])
        ts = np.array([0.5, 1.5, 2.5])
        batch = field.value_batch(xs, xs, ts)
        scalar = [field.value(float(x), float(x), float(t)) for x, t in zip(xs, ts)]
        assert np.allclose(batch, scalar)

    def test_smoothness(self):
        field = ValueNoise3D(seed=3, scale_x=20, scale_y=20, scale_t=5)
        a = field.value(10.0, 0.0, 0.0)
        b = field.value(10.2, 0.0, 0.0)
        assert abs(a - b) < 0.15

    def test_decorrelation_beyond_scale(self):
        field = ValueNoise3D(seed=4, scale_x=10, scale_y=10, scale_t=5)
        rng = np.random.default_rng(1)
        base = rng.uniform(0, 10000, size=600)
        near = np.array(
            [field.value(x, 0, 0) * field.value(x + 1.0, 0, 0) for x in base]
        )
        far = np.array(
            [field.value(x, 0, 0) * field.value(x + 200.0, 0, 0) for x in base]
        )
        assert np.mean(near) > 0.5  # highly correlated at 0.1 scale
        assert abs(np.mean(far)) < 0.15  # decorrelated at 20 scales

    def test_roughly_unit_marginal_variance(self):
        field = ValueNoise3D(seed=5, scale_x=10, scale_y=10, scale_t=5)
        rng = np.random.default_rng(2)
        samples = [
            field.value(float(x), float(y), float(t))
            for x, y, t in rng.uniform(0, 5000, size=(3000, 3))
        ]
        # Interpolated value noise has position-dependent variance; the
        # population variance sits below 1 but well above 0.
        assert 0.25 < np.var(samples) < 1.1

    def test_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            ValueNoise3D(seed=0, scale_x=0.0)


class TestSpatialNoiseField:
    def test_sybil_signature_identical_links(self):
        """Same TX position, same RX, same instant => same shadowing."""
        field = SpatialNoiseField(seed=9)
        a = field.unit_shadowing((10.0, 2.0), (200.0, -1.0), 5.0)
        b = field.unit_shadowing((10.0, 2.0), (200.0, -1.0), 5.0)
        assert a == b

    def test_nearby_transmitters_differ(self):
        field = SpatialNoiseField(seed=9, correlation_distance_m=20.0)
        rx = (300.0, 0.0)
        a = field.unit_shadowing((10.0, 0.0), rx, 5.0)
        b = field.unit_shadowing((13.0, 0.0), rx, 5.0)
        assert a != b

    def test_matrix_matches_scalar(self):
        field = SpatialNoiseField(seed=11)
        tx = np.array([[0.0, 0.0], [50.0, 3.0]])
        rx = np.array([[100.0, 0.0], [200.0, 1.0], [300.0, -2.0]])
        matrix = field.unit_shadowing_matrix(tx, rx, 2.0)
        for i in range(2):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    field.unit_shadowing(tuple(tx[i]), tuple(rx[j]), 2.0)
                )

    def test_pairs_with_times(self):
        field = SpatialNoiseField(seed=12)
        tx = np.array([[0.0, 0.0], [10.0, 0.0]])
        rx = np.array([[100.0, 0.0]])
        times = np.array([1.0, 2.0])
        pairs = field.unit_shadowing_pairs(tx, rx, times)
        assert pairs.shape == (2, 1)
        assert pairs[0, 0] == pytest.approx(
            field.unit_shadowing((0.0, 0.0), (100.0, 0.0), 1.0)
        )

    def test_tx_weight_validation(self):
        with pytest.raises(ValueError):
            SpatialNoiseField(seed=0, tx_weight=0.0)
        with pytest.raises(ValueError):
            SpatialNoiseField(seed=0, tx_weight=1.0)

    def test_common_mode_is_bounded(self):
        """Two far-apart transmitters to one receiver share only the
        RX-side variance fraction."""
        field = SpatialNoiseField(seed=13, tx_weight=0.75)
        rng = np.random.default_rng(3)
        rx = (0.0, 0.0)
        products = []
        for _ in range(500):
            t = float(rng.uniform(0, 1000))
            a = field.unit_shadowing((float(rng.uniform(5000, 9000)), 0.0), rx, t)
            b = field.unit_shadowing((float(rng.uniform(-9000, -5000)), 0.0), rx, t)
            products.append(a * b)
        # Shared variance ~ (1 - tx_weight) * field variance (< 0.25).
        assert abs(np.mean(products)) < 0.25
