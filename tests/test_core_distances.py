"""Unit tests for repro.core.distances (Lp norms, Eq. 2)."""


import numpy as np
import pytest

from repro.core.distances import (
    absolute_cost,
    chebyshev_distance,
    euclidean_distance,
    lp_distance,
    manhattan_distance,
    squared_cost,
)


class TestLpDistance:
    def test_euclidean_known_value(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan_known_value(self):
        assert manhattan_distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev_known_value(self):
        assert chebyshev_distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_p1_equals_manhattan(self):
        x, y = [1.0, 2.0, 3.0], [2.0, 0.0, 5.0]
        assert lp_distance(x, y, p=1) == manhattan_distance(x, y)

    def test_identity(self):
        x = [1.0, -2.0, 3.0]
        for p in (1, 2, 3):
            assert lp_distance(x, x, p=p) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=10), rng.normal(size=10)
        assert lp_distance(x, y) == pytest.approx(lp_distance(y, x))

    def test_triangle_inequality_euclidean(self):
        rng = np.random.default_rng(1)
        x, y, z = (rng.normal(size=8) for _ in range(3))
        assert euclidean_distance(x, z) <= (
            euclidean_distance(x, y) + euclidean_distance(y, z) + 1e-12
        )

    def test_higher_p_never_larger(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=12), rng.normal(size=12)
        assert lp_distance(x, y, 1) >= lp_distance(x, y, 2) >= lp_distance(x, y, 4)

    def test_empty_series(self):
        assert euclidean_distance([], []) == 0.0

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            euclidean_distance([1.0], [1.0, 2.0])

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            lp_distance([1.0], [1.0], p=0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.zeros((2, 2)), np.zeros((2, 2)))


class TestPointCosts:
    def test_squared_cost(self):
        assert squared_cost(1.0, 4.0) == 9.0
        assert squared_cost(4.0, 1.0) == 9.0

    def test_absolute_cost(self):
        assert absolute_cost(1.0, 4.0) == 3.0
        assert absolute_cost(-1.0, 1.0) == 2.0

    def test_zero_at_equal_points(self):
        assert squared_cost(2.5, 2.5) == 0.0
        assert absolute_cost(2.5, 2.5) == 0.0
