"""Unit tests for the measurement-scenario replicas and vehicle nodes."""

import numpy as np
import pytest

from repro.mobility.routes import highway_route
from repro.net.radio import RadioProfile
from repro.sim.nodes import Vehicle
from repro.sim.observations import (
    moving_pair_measurement,
    ranging_measurement,
    stationary_pair_measurement,
)
from repro.attack.sybil import ConstantPower, SybilAttacker, SybilIdentity


class TestStationaryPair:
    def test_sample_count(self):
        series = stationary_pair_measurement(duration_s=30.0, seed=1)
        assert len(series) == 300

    def test_values_plausible(self):
        series = stationary_pair_measurement(duration_s=30.0, seed=1)
        assert -110 < series.mean() < -40

    def test_different_sessions_differ(self):
        """Observation 1: the channel drifts between sessions."""
        a = stationary_pair_measurement(duration_s=60.0, seed=1, start_time=0.0)
        b = stationary_pair_measurement(duration_s=60.0, seed=1, start_time=3600.0)
        assert abs(a.mean() - b.mean()) > 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            stationary_pair_measurement(distance_m=0.0)
        with pytest.raises(ValueError):
            stationary_pair_measurement(duration_s=0.0)


class TestMovingPair:
    def test_moving_variance_exceeds_stationary(self):
        """Observation 1: motion makes the series far more dynamic."""
        stationary = stationary_pair_measurement(duration_s=60.0, seed=2)
        moving = moving_pair_measurement(duration_s=60.0, seed=2)
        assert moving.std() > stationary.std()

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_pair_measurement(duration_s=-1.0)


class TestRanging:
    def test_shapes(self):
        d, r = ranging_measurement("campus", n_samples=100, seed=3)
        assert d.shape == (100,)
        assert r.shape == (100,)

    def test_distance_range_respected(self):
        d, _ = ranging_measurement(
            "rural", n_samples=200, min_distance_m=5.0, max_distance_m=50.0, seed=3
        )
        assert d.min() >= 5.0
        assert d.max() <= 50.0

    def test_rssi_decreases_with_distance_on_average(self):
        d, r = ranging_measurement("urban", n_samples=1500, seed=4)
        near = r[d < 50]
        far = r[d > 300]
        assert near.mean() > far.mean() + 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ranging_measurement("campus", n_samples=3)
        with pytest.raises(ValueError):
            ranging_measurement("campus", min_distance_m=10.0, max_distance_m=5.0)


class TestVehicle:
    def _vehicle(self, attacker=None):
        return Vehicle(
            node_id="v0",
            trajectory=highway_route(60.0),
            profile=RadioProfile(antenna_gain_dbi=0.0),
            attacker=attacker,
        )

    def test_normal_single_identity(self):
        vehicle = self._vehicle()
        assert vehicle.identities == ("v0",)
        assert not vehicle.is_malicious

    def test_normal_one_request_per_interval(self):
        vehicle = self._vehicle()
        rng = np.random.default_rng(0)
        requests = vehicle.beacon_requests(1.0, 0.1, rng)
        assert len(requests) == 1
        assert requests[0].beacon.identity == "v0"
        assert requests[0].tx_node == "v0"

    def test_malicious_requests_per_identity(self):
        attacker = SybilAttacker(
            node_id="v0",
            own_power=ConstantPower(20.0),
            identities=[
                SybilIdentity("s1", ConstantPower(17.0), (50.0, 0.0)),
                SybilIdentity("s2", ConstantPower(23.0), (-50.0, 0.0)),
            ],
        )
        vehicle = self._vehicle(attacker)
        rng = np.random.default_rng(1)
        requests = vehicle.beacon_requests(1.0, 0.1, rng)
        assert len(requests) == 3
        # All from the same radio at the same true position.
        assert {r.tx_node for r in requests} == {"v0"}
        assert len({r.tx_xy for r in requests}) == 1
        # Claimed positions differ.
        claimed = {r.beacon.claimed_position for r in requests}
        assert len(claimed) == 3
        # Per-identity powers honoured.
        powers = {r.beacon.identity: r.eirp_dbm for r in requests}
        assert powers["s1"] == 17.0
        assert powers["s2"] == 23.0

    def test_offsets_within_interval(self):
        vehicle = self._vehicle()
        rng = np.random.default_rng(2)
        for t in (0.0, 5.0):
            for request in vehicle.beacon_requests(t, 0.1, rng):
                assert 0.0 <= request.desired_offset_s < 0.1

    def test_sequence_increments(self):
        vehicle = self._vehicle()
        rng = np.random.default_rng(3)
        first = vehicle.beacon_requests(0.0, 0.1, rng)[0].beacon.sequence
        second = vehicle.beacon_requests(0.1, 0.1, rng)[0].beacon.sequence
        assert second == first + 1
