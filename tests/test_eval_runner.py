"""Tests for the detection runners and training pipeline."""

import numpy as np
import pytest

from repro.baselines.cpvsad import CpvsadConfig, CpvsadDetector
from repro.core import ConstantThreshold, DetectorConfig
from repro.core.timeseries import RSSITimeSeries
from repro.eval.runner import (
    detection_times,
    heard_in_window,
    run_cpvsad,
    run_voiceprint,
)
from repro.eval.training import collect_training_corpus, train_boundary
from repro.radio.base import LinkBudget
from repro.radio.dual_slope import DualSlopeModel
from repro.radio.environments import environment
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import HighwaySimulator


CONFIG = ScenarioConfig(density_vhls_per_km=25, sim_time_s=45.0, seed=11)


@pytest.fixture(scope="module")
def run():
    return HighwaySimulator(CONFIG, recorded_nodes=5).run()


class TestDetectionTimes:
    def test_schedule(self):
        assert detection_times(100.0, 20.0, 20.0) == [20.0, 40.0, 60.0, 80.0, 100.0]

    def test_short_sim(self):
        assert detection_times(10.0, 20.0, 20.0) == []

    def test_single_detection(self):
        assert detection_times(25.0, 20.0, 20.0) == [20.0]

    def test_no_float_drift_over_hour_long_sim(self):
        # Regression: the schedule used to accumulate
        # ``t += detection_period_s``; with a non-representable period
        # (0.1 s) the sum drifts by ~k ulp over tens of thousands of
        # periods and can shift or drop the final detection.  Each
        # instant must equal its closed form by index.
        period = 0.1
        times = detection_times(3600.0, 20.0, period)
        assert len(times) == 35801
        assert times[-1] == 3600.0
        assert all(
            t == round(20.0 + k * period, 9) for k, t in enumerate(times)
        )

    def test_matches_naive_schedule_for_representable_periods(self):
        times = detection_times(3600.0, 20.0, 10.0)
        assert times == [20.0 + 10.0 * k for k in range(359)]


class TestHeardInWindow:
    def test_filters_by_samples(self):
        series_map = {
            "a": RSSITimeSeries.from_values("a", [-70.0] * 50),
            "b": RSSITimeSeries.from_values("b", [-70.0] * 3),
        }
        assert heard_in_window(series_map, 0.0, 10.0, min_samples=10) == ["a"]

    def test_window_bounds(self):
        series_map = {"a": RSSITimeSeries.from_values("a", [-70.0] * 100)}
        assert heard_in_window(series_map, 50.0, 60.0, min_samples=1) == []


class TestRunVoiceprint:
    def test_produces_outcomes_per_verifier_period(self, run):
        outcomes = run_voiceprint(run, ConstantThreshold(0.01))
        times = detection_times(45.0, 20.0, 20.0)
        assert len(outcomes) == len(run.recorded_nodes) * len(times)

    def test_outcome_populations_consistent(self, run):
        outcomes = run_voiceprint(run, ConstantThreshold(0.01))
        for outcome in outcomes:
            assert outcome.true_flagged <= outcome.total_illegitimate
            assert outcome.false_flagged <= outcome.total_legitimate

    def test_verifier_subset(self, run):
        subset = run.recorded_nodes[:2]
        outcomes = run_voiceprint(run, ConstantThreshold(0.01), verifiers=subset)
        assert {o.node for o in outcomes} == set(subset)

    def test_zero_threshold_flags_minimum_pair_only(self, run):
        """Eq. 8 forces the min pair to 0, so threshold 0 still flags it."""
        outcomes = run_voiceprint(run, ConstantThreshold(0.0))
        flagged_any = sum(o.true_flagged + o.false_flagged for o in outcomes)
        assert flagged_any >= 1

    def test_detector_config_respected(self, run):
        # More samples than a 20 s window can contain: nothing compares,
        # so nothing can be flagged even at a huge threshold.
        config = DetectorConfig(min_samples=250)
        outcomes = run_voiceprint(
            run, ConstantThreshold(0.5), detector_config=config
        )
        assert all(o.true_flagged + o.false_flagged == 0 for o in outcomes)


class TestRunCpvsad:
    def test_produces_outcomes(self, run):
        detector = CpvsadDetector(
            assumed_budget=LinkBudget(tx_power_dbm=20.0),
            assumed_model=DualSlopeModel(environment("highway")),
            config=CpvsadConfig(),
        )
        outcomes = run_cpvsad(run, detector, verifiers=run.recorded_nodes[:2])
        assert outcomes
        for outcome in outcomes:
            assert outcome.true_flagged <= outcome.total_illegitimate

    def test_detects_some_sybils_with_correct_model(self, run):
        detector = CpvsadDetector(
            assumed_budget=LinkBudget(tx_power_dbm=20.0),
            assumed_model=DualSlopeModel(environment("highway")),
            config=CpvsadConfig(),
        )
        outcomes = run_cpvsad(run, detector)
        assert sum(o.true_flagged for o in outcomes) > 0


class TestTraining:
    def test_corpus_and_boundary(self):
        corpus = collect_training_corpus(
            [20.0, 60.0],
            base_config=ScenarioConfig(sim_time_s=45.0),
            runs_per_density=1,
            verifiers_per_run=2,
            recorded_nodes=4,
            seed=50,
        )
        assert len(corpus.points) > 50
        positives = corpus.positives()
        negatives = corpus.negatives()
        assert positives.shape[0] > 0
        assert negatives.shape[0] > positives.shape[0]
        # Sybil pairs concentrate at low distances (Fig. 10's structure).
        assert np.median(positives[:, 1]) < np.median(negatives[:, 1])

        line = train_boundary(corpus)
        assert line.threshold_at(20.0) > 0.0
        raw_line = train_boundary(corpus, on="raw")
        assert raw_line.threshold_at(20.0) > 0.0

    def test_train_boundary_validates_mode(self):
        corpus = collect_training_corpus(
            [20.0],
            base_config=ScenarioConfig(sim_time_s=45.0),
            runs_per_density=1,
            verifiers_per_run=1,
            recorded_nodes=2,
            seed=60,
        )
        with pytest.raises(ValueError):
            train_boundary(corpus, on="bogus")


class TestRunXiao:
    def test_produces_outcomes(self, run):
        from repro.baselines.xiao import XiaoConfig, XiaoDetector
        from repro.eval.runner import run_xiao
        from repro.radio.shadowing import LogNormalShadowingModel

        detector = XiaoDetector(
            assumed_budget=LinkBudget(tx_power_dbm=20.0),
            assumed_model=LogNormalShadowingModel(
                path_loss_exponent=2.0, sigma_db=3.9
            ),
            config=XiaoConfig(),
        )
        outcomes = run_xiao(run, detector, verifiers=run.recorded_nodes[:2])
        assert outcomes
        for outcome in outcomes:
            assert outcome.true_flagged <= outcome.total_illegitimate
            assert outcome.false_flagged <= outcome.total_legitimate


class TestCooperativeBeaconRateParity:
    def test_neighbour_floor_follows_configured_beacon_rate(self):
        # Regression: the cooperative driver derived its expected beacon
        # count from a hardcoded 10 Hz.  At 1 Hz each neighbour yields
        # ~10 samples per 10 s window, far under the stale 15-sample
        # floor, so every outcome's populations collapsed to zero; the
        # floor must scale with the scenario's configured rate.
        from dataclasses import replace

        config = replace(
            ScenarioConfig(density_vhls_per_km=25, sim_time_s=45.0, seed=13),
            beacon_rate_hz=1.0,
        )
        result = HighwaySimulator(config, recorded_nodes=3).run()
        detector = CpvsadDetector(
            assumed_budget=LinkBudget(
                tx_power_dbm=sum(config.tx_power_range_dbm) / 2.0
            ),
            assumed_model=DualSlopeModel(environment(config.environment)),
            config=CpvsadConfig(),
        )
        outcomes = run_cpvsad(result, detector, verifiers=result.recorded_nodes[:2])
        assert outcomes
        assert any(
            o.total_legitimate + o.total_illegitimate > 0 for o in outcomes
        )
