"""Direct coverage for ``repro.eval.reporting``.

Every experiment, bench log, and now the profiler's hotspot tables
render through :func:`render_table` / :func:`format_value`; these tests
pin the cell formatting, the width alignment, and the row-length
guard.
"""

import pytest

from repro.eval.reporting import format_value, render_table


class TestFormatValue:
    def test_none_renders_as_dash(self):
        assert format_value(None) == "-"

    def test_bools_render_as_yes_no(self):
        # bool is an int subclass; it must hit the bool branch, not str(int).
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_floats_use_the_default_4_significant_digits(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(1234.5678) == "1235"

    def test_floats_honour_a_custom_format(self):
        assert format_value(0.5, float_format="{:.1%}") == "50.0%"

    def test_ints_and_strings_pass_through(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_basic_layout(self):
        table = render_table(
            ["name", "value"],
            [("a", 1), ("bb", 2)],
            title="demo",
        )
        assert table.splitlines() == [
            "demo",
            "name  value",
            "----  -----",
            "a     1",
            "bb    2",
        ]

    def test_no_title_omits_the_heading_line(self):
        table = render_table(["h"], [("x",)])
        assert table.splitlines()[0] == "h"

    def test_columns_widen_to_the_longest_cell(self):
        table = render_table(["h"], [("longer-than-header",)])
        header, rule, row = table.splitlines()
        assert rule == "-" * len("longer-than-header")
        assert header == "h"  # trailing padding is stripped

    def test_mixed_cell_types_format_per_kind(self):
        table = render_table(
            ["a", "b", "c", "d"],
            [(None, True, 0.123456, 7)],
        )
        assert table.splitlines()[-1].split() == ["-", "yes", "0.1235", "7"]

    def test_no_trailing_whitespace_on_any_line(self):
        table = render_table(["x", "y"], [("a", None), ("something-long", 1)])
        for line in table.splitlines():
            assert line == line.rstrip()

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="2 cells but there are 3 headers"):
            render_table(["a", "b", "c"], [("1", "2")])

    def test_empty_rows_render_header_and_rule_only(self):
        table = render_table(["only", "header"], [])
        assert table.splitlines() == ["only  header", "----  ------"]

    def test_float_format_applies_to_every_float_cell(self):
        table = render_table(
            ["v"], [(0.111111,), (0.999999,)], float_format="{:.2f}"
        )
        assert table.splitlines()[-2:] == ["0.11", "1.00"]
