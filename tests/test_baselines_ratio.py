"""Tests for the Wang (Rayleigh-ratio) and CRSD baselines."""

import numpy as np
import pytest

from repro.baselines.crsd import CrsdConfig, CrsdDetector
from repro.baselines.wang import WangConfig, WangDetector
from repro.core.timeseries import RSSITimeSeries
from repro.radio.base import LinkBudget
from repro.radio.two_ray import TwoRayGroundModel


def _series(level, rng, n=60, fading_db=5.0, start=0.0):
    """One identity's series at one receiver under heavy fading."""
    # Rayleigh-ish: dB values with deep negative excursions.
    power = rng.exponential(1.0, size=n)
    values = level + 10 * np.log10(np.maximum(power, 1e-3)) * (fading_db / 5.6)
    return RSSITimeSeries.from_values("x", values, start=start)


class TestWang:
    def _observations(self, rng, sybil_offset=7.0, fading_db=5.0):
        """Two receivers; 'mal' and 'syb' are co-located, 'other' is not."""
        return {
            "r1": {
                "mal": _series(-60.0, rng, fading_db=fading_db),
                "syb": _series(-60.0 + sybil_offset, rng, fading_db=fading_db),
                "other": _series(-75.0, rng, fading_db=fading_db),
            },
            "r2": {
                "mal": _series(-80.0, rng, fading_db=fading_db),
                "syb": _series(-80.0 + sybil_offset, rng, fading_db=fading_db),
                "other": _series(-62.0, rng, fading_db=fading_db),
            },
        }

    def test_colocated_pair_survives_fading(self):
        rng = np.random.default_rng(0)
        detector = WangDetector()
        pairs = detector.sybil_pairs(self._observations(rng))
        assert ("mal", "syb") in pairs

    def test_distinct_node_not_flagged(self):
        rng = np.random.default_rng(1)
        detector = WangDetector()
        ids = detector.sybil_ids(self._observations(rng))
        assert "other" not in ids

    def test_fingerprint_needs_matched_samples(self):
        rng = np.random.default_rng(2)
        detector = WangDetector()
        a = _series(-60.0, rng, n=5)
        b = _series(-80.0, rng, n=5)
        assert detector.fingerprint(a, b) is None

    def test_fingerprint_matches_offset(self):
        rng = np.random.default_rng(3)
        detector = WangDetector(WangConfig(fading_spread_db=0.1))
        base = _series(-60.0, rng, n=100, fading_db=0.5)
        shifted = RSSITimeSeries.from_values(
            "x", base.values - 15.0, start=0.0
        )
        fp = detector.fingerprint(base, shifted)
        assert fp is not None
        median, n = fp
        assert median == pytest.approx(15.0, abs=0.5)
        assert n == 100

    def test_tolerance_shrinks_with_samples(self):
        config = WangConfig()
        assert config.tolerance_db(100) < config.tolerance_db(10)

    def test_unmatched_timestamps_yield_nothing(self):
        rng = np.random.default_rng(4)
        detector = WangDetector()
        a = _series(-60.0, rng, n=50, start=0.0)
        b = _series(-60.0, rng, n=50, start=1000.0)
        assert detector.fingerprint(a, b) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WangConfig(base_tolerance_db=0.0)
        with pytest.raises(ValueError):
            WangConfig(min_matched_samples=1)
        with pytest.raises(ValueError):
            WangConfig(match_window_s=0.0)


class TestCrsd:
    def _detector(self, tolerance=25.0):
        return CrsdDetector(
            assumed_budget=LinkBudget(tx_power_dbm=20.0),
            assumed_model=TwoRayGroundModel(),
            config=CrsdConfig(distance_tolerance_m=tolerance),
        )

    def _observations(self, rng, noise_db=0.5):
        """Two observers at different vantage points.

        'mal'/'syb' share one radio (same distance at *both* observers);
        'ring' matches mal's distance at r1 only (the ring ambiguity).
        """
        detector = self._detector()
        model = detector.assumed_model
        budget = detector.assumed_budget

        def series_at(distance):
            mean = budget.received_dbm(model.path_loss_db(distance))
            return RSSITimeSeries.from_values(
                "x", mean + rng.normal(0, noise_db, 40)
            )

        return {
            "r1": {
                "mal": series_at(200.0),
                "syb": series_at(200.0),
                "ring": series_at(205.0),  # same distance from r1 ...
            },
            "r2": {
                "mal": series_at(400.0),
                "syb": series_at(400.0),
                "ring": series_at(150.0),  # ... but not from r2
            },
        }

    def test_colocated_pair_flagged(self):
        rng = np.random.default_rng(0)
        detector = self._detector()
        pairs = detector.sybil_pairs(self._observations(rng))
        assert ("mal", "syb") in pairs

    def test_ring_ambiguity_resolved_by_intersection(self):
        """The scheme's whole point: one observer's grouping is
        ambiguous; the cross-observer intersection prunes it."""
        rng = np.random.default_rng(1)
        detector = self._detector()
        observations = self._observations(rng)
        local_r1 = detector.suspect_pairs_at(observations["r1"])
        assert ("mal", "ring") in local_r1  # locally suspicious ...
        final = detector.sybil_pairs(observations)
        assert ("mal", "ring") not in final  # ... globally cleared

    def test_relative_distance_inversion(self):
        rng = np.random.default_rng(2)
        detector = self._detector()
        model = detector.assumed_model
        budget = detector.assumed_budget
        truth = 300.0
        mean = budget.received_dbm(model.path_loss_db(truth))
        series = RSSITimeSeries.from_values("x", [mean] * 20)
        estimate = detector.relative_distance(series)
        assert estimate == pytest.approx(truth, rel=0.05)

    def test_short_series_unusable(self):
        detector = self._detector()
        series = RSSITimeSeries.from_values("x", [-70.0] * 3)
        assert detector.relative_distance(series) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CrsdConfig(distance_tolerance_m=0.0)
        with pytest.raises(ValueError):
            CrsdConfig(min_observers=1)
