"""Tests for the Xiao detection-and-localisation baseline."""

import numpy as np
import pytest

from repro.baselines.cpvsad import IdentityClaim, WitnessReport
from repro.baselines.xiao import XiaoConfig, XiaoDetector
from repro.radio.base import LinkBudget
from repro.radio.shadowing import LogNormalShadowingModel


def _detector(tolerance=120.0):
    return XiaoDetector(
        assumed_budget=LinkBudget(tx_power_dbm=20.0),
        assumed_model=LogNormalShadowingModel(path_loss_exponent=2.0, sigma_db=3.9),
        config=XiaoConfig(position_tolerance_m=tolerance),
    )


def _reports(detector, true_xy, observers, rng, noise_db=2.0):
    reports = []
    model = detector.assumed_model
    budget = detector.assumed_budget
    for index, obs_xy in enumerate(observers):
        d = max(np.hypot(true_xy[0] - obs_xy[0], true_xy[1] - obs_xy[1]), 1.0)
        rssi = model.mean_rssi(d, budget) + rng.normal(0, noise_db)
        reports.append(WitnessReport(f"w{index}", obs_xy, float(rssi), n_samples=50))
    return reports


OBSERVERS = [(0.0, 0.0), (400.0, 0.0), (200.0, 300.0), (200.0, -250.0)]


class TestLocalization:
    def test_localizes_transmitter(self):
        rng = np.random.default_rng(0)
        detector = _detector()
        true_xy = (180.0, 40.0)
        errors = []
        for _ in range(20):
            reports = _reports(detector, true_xy, OBSERVERS, rng)
            estimate = detector.localize(reports)
            assert estimate is not None
            errors.append(np.hypot(estimate[0] - true_xy[0], estimate[1] - true_xy[1]))
        assert np.median(errors) < 100.0

    def test_needs_three_observers(self):
        rng = np.random.default_rng(1)
        detector = _detector()
        reports = _reports(detector, (100.0, 0.0), OBSERVERS[:2], rng)
        assert detector.localize(reports) is None

    def test_short_reports_ignored(self):
        rng = np.random.default_rng(2)
        detector = _detector()
        reports = _reports(detector, (100.0, 0.0), OBSERVERS, rng)
        starved = [
            WitnessReport(r.observer_id, r.observer_xy, r.mean_rssi_dbm, 1)
            for r in reports
        ]
        assert detector.localize(starved) is None


class TestVerification:
    def test_truthful_claim_passes(self):
        rng = np.random.default_rng(3)
        detector = _detector()
        true_xy = (180.0, 40.0)
        passes = sum(
            not detector.is_sybil(
                IdentityClaim("honest", true_xy),
                _reports(detector, true_xy, OBSERVERS, rng),
            )
            for _ in range(20)
        )
        assert passes >= 15

    def test_big_position_lie_rejected(self):
        rng = np.random.default_rng(4)
        detector = _detector()
        true_xy = (180.0, 40.0)
        claimed = (180.0 + 400.0, 40.0)
        rejections = sum(
            detector.is_sybil(
                IdentityClaim("sybil", claimed),
                _reports(detector, true_xy, OBSERVERS, rng),
            )
            for _ in range(20)
        )
        assert rejections >= 18

    def test_result_reports_error(self):
        rng = np.random.default_rng(5)
        detector = _detector()
        true_xy = (180.0, 40.0)
        claimed = (500.0, 40.0)
        result = detector.verify(
            IdentityClaim("s", claimed),
            _reports(detector, true_xy, OBSERVERS, rng),
        )
        assert result is not None
        assert result.error_m > 100.0
        assert result.is_sybil

    def test_untestable_claim_none(self):
        detector = _detector()
        assert detector.verify(IdentityClaim("x", (0.0, 0.0)), []) is None
        assert not detector.is_sybil(IdentityClaim("x", (0.0, 0.0)), [])

    def test_model_mismatch_breaks_localization(self):
        """Fig. 11b's mechanism, localisation flavour: a wrong exponent
        biases every distance estimate and the honest claim drifts out
        of tolerance."""
        rng = np.random.default_rng(6)
        detector = _detector(tolerance=80.0)
        reality = LogNormalShadowingModel(path_loss_exponent=3.2, sigma_db=2.0)
        budget = LinkBudget(tx_power_dbm=20.0)
        true_xy = (180.0, 40.0)
        rejections = 0
        for _ in range(20):
            reports = []
            for index, obs_xy in enumerate(OBSERVERS):
                d = max(np.hypot(true_xy[0] - obs_xy[0], true_xy[1] - obs_xy[1]), 1.0)
                rssi = reality.mean_rssi(d, budget) + rng.normal(0, 2.0)
                reports.append(
                    WitnessReport(f"w{index}", obs_xy, float(rssi), n_samples=50)
                )
            if detector.is_sybil(IdentityClaim("honest", true_xy), reports):
                rejections += 1
        assert rejections >= 10


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            XiaoConfig(position_tolerance_m=0.0)
        with pytest.raises(ValueError):
            XiaoConfig(min_observers=2)
