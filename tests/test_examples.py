"""Smoke tests for the ``examples/`` scripts.

Each script is run as a real subprocess (``python examples/<name>.py``)
with ``REPRO_EXAMPLE_FAST=1``, which every example honours by shrinking
its drives/sweeps to a few seconds.  The scripts must exit 0 and print
their headline output — untested examples silently rot as the API
moves.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: (script, substring its stdout must contain).
EXAMPLES = [
    ("quickstart.py", "suspected Sybil ids"),
    ("field_test.py", "Fig. 13"),
    ("highway_attack.py", "average detection rate"),
    ("online_monitor.py", "final verdict"),
    ("power_spoofing.py", "normalisation"),
    ("ranging_failure.py", "Table IV"),
]


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=str(REPO_ROOT),
    )


def test_every_example_is_covered():
    """A new example script must be added to the smoke list."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == {name for name, _ in EXAMPLES}


@pytest.mark.parametrize("name,expected", EXAMPLES, ids=[n for n, _ in EXAMPLES])
def test_example_runs(name, expected):
    proc = run_example(name)
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert expected in proc.stdout, (
        f"{name} stdout missing {expected!r}:\n{proc.stdout}"
    )
