"""Tests for repro.obs.flightrec — ring buffers, dumps, hooks."""

import json
import logging
import sys

import pytest

from repro.obs.flightrec import FlightRecorder, TeeSpanExporter
from repro.obs.health import Alert
from repro.obs.logging import get_logger
from repro.obs.trace import InMemorySpanExporter, Tracer

from tests.test_obs_health import make_report


def read_bundle(path):
    records = [
        json.loads(line) for line in path.read_text().strip().splitlines()
    ]
    assert records[0]["type"] == "postmortem"
    return records[0], records[1:]


class TestTeeSpanExporter:
    def test_fans_out_and_drops_none(self):
        sink_a, sink_b = InMemorySpanExporter(), InMemorySpanExporter()
        tee = TeeSpanExporter(sink_a, None, sink_b)
        assert len(tee.exporters) == 2
        tee.export({"name": "x"})
        assert sink_a.records == [{"name": "x"}]
        assert sink_b.records == [{"name": "x"}]


class TestRingBuffers:
    def test_span_ring_is_bounded(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "pm.jsonl"), capacity=3)
        for i in range(10):
            recorder.export({"name": f"s{i}"})
        _, records = read_bundle_after_dump(recorder, tmp_path)
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["s7", "s8", "s9"]

    def test_report_summary_row(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "pm.jsonl"))
        recorder.record_report(
            make_report(t=40.0, n_pairs=6, n_flagged=1)
        )
        recorder.dump()
        _, records = read_bundle(tmp_path / "pm.jsonl")
        [row] = [r for r in records if r["type"] == "report"]
        assert row["t"] == 40.0
        assert row["pairs"] == 6
        assert row["flagged_pairs"] == 1
        assert row["sybil_ids"] == ["a0", "b0"]

    def test_rejects_nonpositive_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "pm.jsonl"), capacity=0)


def read_bundle_after_dump(recorder, tmp_path):
    path = recorder.dump()
    return read_bundle(tmp_path / path.split("/")[-1])


class TestDumping:
    def test_header_counts_and_reason(self, tmp_path):
        out = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(str(out), capacity=8)
        recorder.export({"name": "s"})
        recorder.record_report(make_report())
        path = recorder.dump(reason="manual-test")
        assert path == str(out)
        header, records = read_bundle(out)
        assert header["reason"] == "manual-test"
        assert header["spans"] == 1
        assert header["reports"] == 1
        assert header["capacity"] == 8
        assert len(records) == 2

    def test_repeated_dumps_get_indexed_paths(self, tmp_path):
        out = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(str(out))
        first = recorder.dump()
        second = recorder.dump()
        third = recorder.dump()
        assert first == str(out)
        assert second == f"{out}.1"
        assert third == f"{out}.2"
        assert recorder.dumps_written == 3

    def test_dump_flushes_open_spans_from_tracer(self, tmp_path):
        out = tmp_path / "pm.jsonl"
        tracer = Tracer()
        recorder = FlightRecorder(str(out), tracer=tracer)
        tracer.exporter = recorder
        with tracer.span("outer"):
            recorder.dump(reason="mid-span")
        _, records = read_bundle(out)
        [span] = [r for r in records if r["type"] == "span"]
        assert span["name"] == "outer"
        assert span["attributes"]["partial"] is True
        assert (
            span["attributes"]["flush_reason"]
            == "flight_recorder:mid-span"
        )


class TestAlertHook:
    def test_on_alert_buffers_and_dumps(self, tmp_path):
        out = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(str(out))
        alert = Alert(
            kind="beacon_gap",
            message="no beacons for 19.0s",
            t=20.0,
            value=19.0,
            threshold=5.0,
        )
        path = recorder.on_alert(alert)
        assert path == str(out)
        header, records = read_bundle(out)
        assert header["reason"] == "alert:beacon_gap"
        [row] = [r for r in records if r["type"] == "alert"]
        assert row["kind"] == "beacon_gap"
        assert row["threshold"] == 5.0


class TestLogCapture:
    def test_structured_log_events_buffered(self, tmp_path):
        out = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(str(out))
        recorder.install_log_capture()
        try:
            get_logger("core.pipeline").warning(
                "detection period fired", extra={"period": 3}
            )
        finally:
            recorder.uninstall_log_capture()
        recorder.dump()
        _, records = read_bundle(out)
        [row] = [r for r in records if r["type"] == "log"]
        assert row["msg"] == "detection period fired"
        assert row["level"] == "WARNING"
        assert row["logger"] == "repro.core.pipeline"
        assert row["period"] == 3

    def test_uninstall_detaches_handler(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "pm.jsonl"))
        root = logging.getLogger("repro")
        before = list(root.handlers)
        recorder.install_log_capture()
        assert len(root.handlers) == len(before) + 1
        recorder.close()  # close() also uninstalls
        assert root.handlers == before


class TestExcepthook:
    def test_unhandled_exception_triggers_dump(self, tmp_path):
        out = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(str(out))
        recorder.export({"name": "s"})
        seen = []
        original = sys.excepthook
        sys.excepthook = lambda *exc_info: seen.append(exc_info)
        try:
            recorder.install_excepthook()
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                sys.excepthook(*sys.exc_info())
        finally:
            recorder.uninstall_excepthook()
            sys.excepthook = original
        header, _ = read_bundle(out)
        assert header["reason"] == "unhandled:RuntimeError"
        assert len(seen) == 1  # the previous hook still ran

    def test_uninstall_restores_previous_hook(self):
        recorder = FlightRecorder("unused.jsonl")
        original = sys.excepthook
        recorder.install_excepthook()
        assert sys.excepthook is not original
        recorder.uninstall_excepthook()
        assert sys.excepthook is original
