"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["table1"],
            ["fig9"],
            ["fig5", "--duration", "60"],
            ["table4", "--samples", "500"],
            ["fig6-7", "--duration", "60"],
            ["fig10", "--densities", "10,40", "--sim-time", "45"],
            ["fig11a", "--densities", "20", "--runs", "2"],
            ["fig13", "--duration", "120", "--period", "40"],
            ["timing"],
            ["ablations", "--duration", "60"],
            ["serve", "--observers", "5", "--shards", "2"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_densities_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["fig10", "--densities", "10,40,80"])
        assert args.densities == [10.0, 40.0, 80.0]

    def test_bad_densities_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig10", "--densities", "ten"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fig10", "--densities", "-5"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out
        assert "fig13" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Voiceprint" in out
        assert "Model-free" in out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "5" in out
        assert "warp path" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "stationary session 1" in out

    def test_fig13_small(self, capsys):
        assert main(["fig13", "--duration", "90", "--period", "45"]) == 0
        out = capsys.readouterr().out
        assert "campus" in out
        assert "highway" in out

    def test_serve_demo(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--observers", "4",
                    "--duration", "45",
                    "--shards", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serve summary" in out
        assert "beacons ingested" in out
        assert "drained cleanly" in out
        assert "ghost" in out  # confirmed Sybil clusters listed

    def test_serve_stdin_jsonl(self, capsys, monkeypatch):
        import io
        import json as json_mod

        lines = "\n".join(
            json_mod.dumps(
                {"observer": "v1", "identity": f"car{i % 3}",
                 "t": i * 0.1, "rssi": -70.0 + i % 5}
            )
            for i in range(600)
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", "--input", "-"]) == 0
        out = capsys.readouterr().out
        assert "beacons ingested" in out
        assert "600" in out

    def test_serve_missing_input_file_fails_cleanly(self):
        with pytest.raises(SystemExit):
            main(["serve", "--input", "/nonexistent/beacons.jsonl"])


class TestObservabilityFlags:
    def test_flags_parse_before_and_after_subcommand(self):
        parser = build_parser()
        before = parser.parse_args(["--metrics-out", "m.jsonl", "fig13"])
        after = parser.parse_args(["fig13", "--metrics-out", "m.jsonl"])
        assert before.metrics_out == after.metrics_out == "m.jsonl"
        assert before.command == after.command == "fig13"

    def test_flags_default_to_off(self):
        args = build_parser().parse_args(["list"])
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.log_level is None

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "--log-level", "LOUD"])

    def test_metrics_out_writes_valid_jsonl(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.jsonl"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--metrics-out", str(metrics_path),
                ]
            )
            == 0
        )
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        assert records, "metrics file must not be empty"
        names = {r["name"] for r in records}
        assert "detector.pairs_compared" in names
        assert "detector.dtw_cells" in names
        assert "sim.events_dispatched" in names
        by_name = {r["name"]: r for r in records}
        detect_ms = by_name["detector.detect_ms"]
        assert detect_ms["type"] == "histogram"
        assert detect_ms["count"] > 0
        # The end-of-run summary table is printed to stdout.
        out = capsys.readouterr().out
        assert "detector.pairs_compared" in out

    def test_telemetry_flags_parse_before_and_after_subcommand(self):
        parser = build_parser()
        before = parser.parse_args(
            ["--telemetry-port", "9110", "--snapshot-interval", "5", "fig13"]
        )
        after = parser.parse_args(
            ["fig13", "--telemetry-port", "9110", "--snapshot-interval", "5"]
        )
        assert before.telemetry_port == after.telemetry_port == 9110
        assert before.snapshot_interval == after.snapshot_interval == 5.0

    def test_telemetry_flags_default_to_off(self):
        args = build_parser().parse_args(["list"])
        assert args.telemetry_port is None
        assert args.snapshot_interval is None
        assert args.snapshot_out is None
        assert args.flight_recorder_out is None
        assert args.health_thresholds is None

    def test_health_thresholds_parsed_into_dataclass(self):
        args = build_parser().parse_args(
            ["list", "--health-thresholds", "silence=30,detect_ms=250"]
        )
        assert args.health_thresholds.max_silence_s == 30.0
        assert args.health_thresholds.max_detect_ms == 250.0

    def test_bad_health_thresholds_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["list", "--health-thresholds", "bogus=1"]
            )

    def test_telemetry_run_serves_and_snapshots(self, tmp_path, capsys):
        snapshot_path = tmp_path / "snap.jsonl"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--telemetry-port", "0",
                    "--snapshot-interval", "60",
                    "--snapshot-out", str(snapshot_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[telemetry: http://127.0.0.1:" in out
        assert "health: ok" in out
        # close() takes a final snapshot even if the interval never fired.
        records = [
            json.loads(line)
            for line in snapshot_path.read_text().splitlines()
        ]
        assert records and records[-1]["type"] == "snapshot"
        assert "detector.pairs_compared" in records[-1]["counters"]

    def test_health_summary_reports_alerts(self, tmp_path, capsys):
        postmortem = tmp_path / "pm.jsonl"
        # detect_ms=0.0001 is impossibly tight: every detection alerts,
        # which must be reported and must dump a post-mortem bundle.
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--health-thresholds", "detect_ms=0.0001",
                    "--flight-recorder-out", str(postmortem),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "health: ALERT" in out
        assert "[detect_latency]" in out
        assert "post-mortem bundle(s)" in out
        header = json.loads(postmortem.read_text().splitlines()[0])
        assert header["type"] == "postmortem"
        assert header["reason"] == "alert:detect_latency"

    def test_trace_out_writes_detection_spans(self, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--trace-out", str(trace_path),
                ]
            )
            == 0
        )
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        roots = [r for r in records if r["parent_id"] is None]
        root_names = {r["name"] for r in roots}
        # Detection roots carry the phase children; the simulated drives
        # export their own "sim" roots (profiler phase coverage).
        assert {"detection", "sim"} <= root_names
        detection_root = next(r for r in roots if r["name"] == "detection")
        children = [
            r for r in records if r["parent_id"] == detection_root["span_id"]
        ]
        assert len(children) >= 3


class TestProfilingFlags:
    def test_flags_parse_before_and_after_subcommand(self):
        parser = build_parser()
        before = parser.parse_args(
            ["--profile", "--profile-hz", "50", "--profile-out", "p.c", "fig13"]
        )
        after = parser.parse_args(
            ["fig13", "--profile", "--profile-hz", "50", "--profile-out", "p.c"]
        )
        assert before.profile is after.profile is True
        assert before.profile_hz == after.profile_hz == 50.0
        assert before.profile_out == after.profile_out == "p.c"

    def test_flags_default_to_off(self):
        args = build_parser().parse_args(["list"])
        assert args.profile is False
        assert args.profile_hz is None
        assert args.profile_out is None
        assert args.profile_memory is False

    def test_unprofiled_run_starts_no_profiler_thread(self):
        import threading
        import tracemalloc

        from repro.obs.profiling import default_profiler

        assert main(["table1"]) == 0
        assert default_profiler() is None
        assert "repro-profiler" not in [t.name for t in threading.enumerate()]
        assert not tracemalloc.is_tracing()

    def test_profile_run_emits_tables_and_collapsed_file(
        self, tmp_path, capsys
    ):
        import threading

        from repro.obs.profiling import PHASES, default_profiler

        out_path = tmp_path / "profile.collapsed"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--profile",
                    "--profile-hz", "250",
                    "--profile-out", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile phases" in out
        assert "profile hotspots" in out
        assert f"-> {out_path}]" in out
        # Profiler torn down with the run.
        assert default_profiler() is None
        assert "repro-profiler" not in [t.name for t in threading.enumerate()]
        # Valid collapsed-stack lines, attributed to known phases.
        lines = out_path.read_text().splitlines()
        assert lines
        phases_seen = set()
        total = attributed = 0
        for line in lines:
            stack, _, count = line.rpartition(" ")
            root = stack.split(";", 1)[0]
            total += int(count)
            if root in PHASES:
                attributed += int(count)
                phases_seen.add(root)
            else:
                assert root == "other"
        assert attributed / total >= 0.9
        assert "sim" in phases_seen and "compare" in phases_seen

    def test_profile_out_indexes_instead_of_overwriting(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        out_path = tmp_path / "profile.collapsed"
        out_path.write_text("previous run\n")
        assert (
            main(
                [
                    "fig14",
                    "--duration", "30",
                    "--profile-hz", "250",  # implies --profile
                    "--profile-out", str(out_path),
                ]
            )
            == 0
        )
        assert out_path.read_text() == "previous run\n"
        assert (tmp_path / "profile.collapsed.1").exists()
        assert "profile.collapsed.1]" in capsys.readouterr().out

    def test_profile_memory_reports_per_phase_memory(
        self, tmp_path, capsys, monkeypatch
    ):
        import tracemalloc

        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "fig14",
                    "--duration", "30",
                    "--profile-memory",  # implies --profile
                    "--profile-hz", "250",
                    "--profile-out", str(tmp_path / "p.collapsed"),
                ]
            )
            == 0
        )
        assert not tracemalloc.is_tracing()
        out = capsys.readouterr().out
        assert "peak KiB" in out
        assert "phase memory records" in out
        mem_lines = (tmp_path / "p.collapsed.memory.jsonl").read_text()
        records = [json.loads(line) for line in mem_lines.splitlines()]
        assert records
        assert all(r["type"] == "memory" for r in records)
        assert any(r["phase"] == "sim" for r in records)

    def test_profile_gauges_reach_the_metrics_output(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.jsonl"
        assert (
            main(
                [
                    "fig14",
                    "--duration", "30",
                    "--profile",
                    "--profile-hz", "250",
                    "--profile-out", str(tmp_path / "p.collapsed"),
                    "--metrics-out", str(metrics_path),
                ]
            )
            == 0
        )
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        names = {r["name"] for r in records}
        assert "pipeline.profile.samples" in names
        assert "pipeline.profile.attributed_ratio" in names


class TestAuditFlags:
    def test_flags_parse_before_and_after_subcommand(self):
        parser = build_parser()
        before = parser.parse_args(
            ["--audit-out", "a.jsonl", "--margin-epsilon", "0.1", "fig13"]
        )
        after = parser.parse_args(
            ["fig13", "--audit-out", "a.jsonl", "--margin-epsilon", "0.1"]
        )
        assert before.audit_out == after.audit_out == "a.jsonl"
        assert before.margin_epsilon == after.margin_epsilon == 0.1

    def test_flags_default_to_off(self):
        args = build_parser().parse_args(["list"])
        assert args.audit_out is None
        assert args.margin_epsilon is None

    def test_unaudited_run_installs_no_global_log(self):
        from repro.obs.audit import default_audit_log

        assert main(["table1"]) == 0
        assert default_audit_log() is None

    def test_audited_run_writes_log_and_footer(self, tmp_path, capsys):
        from repro.obs.audit import default_audit_log, load_audit_log

        audit_path = tmp_path / "audit.jsonl"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--audit-out", str(audit_path),
                ]
            )
            == 0
        )
        # Torn down with the run, like the profiler.
        assert default_audit_log() is None
        out = capsys.readouterr().out
        assert f"-> {audit_path}]" in out
        assert "detection bundle(s)" in out
        bundles = load_audit_log(str(audit_path))
        assert all(b["schema"] == 1 for b in bundles)
        assert any(b["pairs"] for b in bundles)

    def test_margin_epsilon_restored_after_run(self):
        from repro.obs.audit import get_near_miss_epsilon

        before = get_near_miss_epsilon()
        assert main(["table1", "--margin-epsilon", "0.2"]) == 0
        assert get_near_miss_epsilon() == before


class TestExplainCommand:
    @pytest.fixture(scope="class")
    def audit_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("audit") / "audit.jsonl"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--audit-out", str(path),
                ]
            )
            == 0
        )
        return str(path)

    def test_worst_renders_forensic_report(self, audit_log, capsys):
        capsys.readouterr()
        assert main(["explain", audit_log, "--worst"]) == 0
        out = capsys.readouterr().out
        assert "verdict :" in out
        assert "margin  :" in out
        assert "prov    :" in out
        assert "window  :" in out

    def test_pair_selector_shows_every_period(self, audit_log, capsys):
        # --pair is a prefix of the top-level --pairwise-* flags; with
        # abbreviation matching it would die as "ambiguous option"
        # before reaching the explain subparser.
        import json

        bundle = json.loads(Path(audit_log).read_text().splitlines()[0])
        record = bundle["pairs"][0]
        capsys.readouterr()
        spec = f"{record['a']},{record['b']}"
        assert main(["explain", audit_log, "--pair", spec]) == 0
        out = capsys.readouterr().out
        assert f"{record['a']} × {record['b']}" in out
        assert out.count("verdict :") >= 1

    def test_verify_replays_bit_identically(self, audit_log, capsys):
        capsys.readouterr()
        assert main(["explain", audit_log, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "all bit-identical" in out

    def test_near_misses_caps_reports(self, audit_log, capsys):
        capsys.readouterr()
        assert main(["explain", audit_log, "--near-misses", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("verdict :") <= 2

    def test_requires_a_selector(self, audit_log):
        with pytest.raises(SystemExit):
            main(["explain", audit_log])

    def test_bad_pair_spec_rejected(self, audit_log):
        with pytest.raises(SystemExit):
            main(["explain", audit_log, "--pair", "only-one"])

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["explain", str(tmp_path / "nope.jsonl"), "--worst"])

    def test_tampered_log_fails_verification(self, audit_log, tmp_path):
        import json

        lines = Path(audit_log).read_text().splitlines()
        victim = next(
            b for b in map(json.loads, lines)
            if any(p["provenance"] == "exact" for p in b["pairs"])
        )
        record = next(
            p for p in victim["pairs"] if p["provenance"] == "exact"
        )
        record["raw_distance"] += 1e-9
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text(json.dumps(victim) + "\n")
        with pytest.raises(RuntimeError, match="replay mismatch"):
            main(["explain", str(tampered), "--verify"])


class TestWatchtowerFlags:
    def test_flags_parse_before_and_after_subcommand(self):
        parser = build_parser()
        before = parser.parse_args(
            ["--watch-record", "w.jsonl", "--report-out", "r.html", "fig13"]
        )
        after = parser.parse_args(
            ["fig13", "--watch-record", "w.jsonl", "--report-out", "r.html"]
        )
        assert before.watch_record == after.watch_record == "w.jsonl"
        assert before.report_out == after.report_out == "r.html"

    def test_flags_default_to_off(self):
        args = build_parser().parse_args(["list"])
        assert args.watch_record is None
        assert args.slo is None
        assert args.report_out is None

    def test_slo_flag_parses_and_repeats(self):
        args = build_parser().parse_args(
            [
                "list",
                "--slo", "p99:metric=hist:detector.detect_ms:p99,max=250",
                "--slo", "floor:metric=health.flagged_pair_rate,max=0.5",
            ]
        )
        assert [spec.name for spec in args.slo] == ["p99", "floor"]
        assert args.slo[0].max_value == 250.0

    def test_bad_slo_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "--slo", "no-metric:max=1"])

    def test_watch_subcommand_parses(self):
        args = build_parser().parse_args(
            ["watch", "run.tsdb.jsonl", "--once", "--interval", "0.5"]
        )
        assert args.command == "watch"
        assert args.source == "run.tsdb.jsonl"
        assert args.once is True
        assert args.interval == 0.5

    def test_watch_record_run_dumps_store_and_watch_renders_it(
        self, tmp_path, capsys
    ):
        dump = tmp_path / "run.tsdb.jsonl"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--watch-record", str(dump),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "view with 'watch" in out
        assert dump.is_file()
        header = json.loads(dump.read_text().splitlines()[0])
        assert header["type"] == "tsdb"

        # The watch subcommand renders the dump once, without ANSI.
        assert main(["watch", str(dump), "--once"]) == 0
        watched = capsys.readouterr().out
        assert "repro watch" in watched
        assert "\x1b" not in watched

    def test_watch_record_run_writes_report(self, tmp_path, capsys):
        report = tmp_path / "run.html"
        assert (
            main(
                [
                    "fig13",
                    "--duration", "60",
                    "--period", "30",
                    "--report-out", str(report),
                ]
            )
            == 0
        )
        assert "[run report -> " in capsys.readouterr().out
        assert report.read_text().startswith("<!doctype html>")

    def test_watch_rejects_bad_source(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["watch", str(tmp_path / "missing.jsonl"), "--once"])


class TestTraceCommand:
    def _serve_with_lineage(self, tmp_path, extra=()):
        dump = tmp_path / "traces.jsonl"
        audit = tmp_path / "audit.jsonl"
        argv = [
            "serve",
            "--observers", "2",
            "--identities", "3",
            "--sybil", "2",
            "--duration", "25",
            "--shards", "2",
            "--lineage-out", str(dump),
            "--lineage-sample", "1.0",
            "--audit-out", str(audit),
            *extra,
        ]
        assert main(argv) == 0
        return dump, audit

    def test_serve_lineage_run_then_flagged_audit_join(
        self, tmp_path, capsys
    ):
        dump, audit = self._serve_with_lineage(tmp_path)
        out = capsys.readouterr().out
        assert "traces retained" in out
        assert dump.exists()

        assert (
            main(
                [
                    "trace", str(dump),
                    "--flagged",
                    "--audit", str(audit),
                    "--once",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "audit join:" in out
        assert "0/0" not in out  # flagged verdicts existed and joined

    def test_trace_follow_renders_waterfall_and_evidence(
        self, tmp_path, capsys
    ):
        dump, audit = self._serve_with_lineage(tmp_path)
        capsys.readouterr()
        from repro.obs.lineage import load_lineage

        flagged = [r for r in load_lineage(str(dump)) if r["flagged"]]
        assert flagged
        cid = flagged[0]["correlation_id"]
        assert (
            main(["trace", str(dump), "--follow", cid, "--audit", str(audit)])
            == 0
        )
        out = capsys.readouterr().out
        assert "queue_wait" in out
        assert "ingest-to-verdict" in out
        assert "repro explain" in out  # joined audit pair evidence

    def test_trace_export_writes_chrome_json(self, tmp_path, capsys):
        dump, _ = self._serve_with_lineage(tmp_path)
        capsys.readouterr()
        chrome = tmp_path / "chrome.json"
        assert (
            main(["trace", str(dump), "--slowest", "2", "--export", str(chrome)])
            == 0
        )
        payload = json.loads(chrome.read_text(encoding="utf-8"))
        assert payload["traceEvents"]

    def test_trace_unknown_cid_fails_cleanly(self, tmp_path):
        dump, _ = self._serve_with_lineage(tmp_path)
        with pytest.raises(SystemExit):
            main(["trace", str(dump), "--follow", "c-nope"])

    def test_trace_rejects_non_lineage_file(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "tsdb"}\n', encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["trace", str(bogus)])

    def test_lineage_flags_default_to_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.lineage is False
        assert args.lineage_out is None
        assert args.lineage_sample == 0.01
        assert args.lineage_capacity == 512

    def test_serve_without_lineage_leaves_global_off(self, capsys):
        from repro.obs.lineage import default_lineage

        assert (
            main(["serve", "--observers", "1", "--duration", "25"]) == 0
        )
        assert default_lineage() is None
