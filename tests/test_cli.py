"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["table1"],
            ["fig9"],
            ["fig5", "--duration", "60"],
            ["table4", "--samples", "500"],
            ["fig6-7", "--duration", "60"],
            ["fig10", "--densities", "10,40", "--sim-time", "45"],
            ["fig11a", "--densities", "20", "--runs", "2"],
            ["fig13", "--duration", "120", "--period", "40"],
            ["timing"],
            ["ablations", "--duration", "60"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_densities_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["fig10", "--densities", "10,40,80"])
        assert args.densities == [10.0, 40.0, 80.0]

    def test_bad_densities_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig10", "--densities", "ten"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fig10", "--densities", "-5"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out
        assert "fig13" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Voiceprint" in out
        assert "Model-free" in out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "5" in out
        assert "warp path" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "stationary session 1" in out

    def test_fig13_small(self, capsys):
        assert main(["fig13", "--duration", "90", "--period", "45"]) == 0
        out = capsys.readouterr().out
        assert "campus" in out
        assert "highway" in out
