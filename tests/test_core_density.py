"""Unit tests for repro.core.density (Eq. 9)."""

import pytest

from repro.core.density import DensityEstimator, linear_density


class TestLinearDensity:
    def test_eq9(self):
        # 90 nodes over 2 * 450 m of covered road = 0.1 vehicles/m.
        assert linear_density(90, 450.0) == pytest.approx(0.1)

    def test_zero_nodes(self):
        assert linear_density(0, 400.0) == 0.0

    def test_per_km_conversion(self):
        # 100 vehicles/km scenario: Eq. 9 should recover itself.
        assert linear_density(80, 400.0) * 1000.0 == pytest.approx(100.0)

    def test_rejects_negative_nodes(self):
        with pytest.raises(ValueError):
            linear_density(-1, 400.0)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            linear_density(5, 0.0)


class TestDensityEstimator:
    def test_first_estimate_counts_everyone(self):
        estimator = DensityEstimator(max_range_m=500.0)
        estimator.hear_all(["a", "b", "sybil"])
        estimator.mark_illegitimate("sybil")
        # Paper: the first estimate cannot yet exclude anyone.
        assert estimator.estimate() == pytest.approx(3 / 1000.0)

    def test_later_estimates_exclude_flagged(self):
        estimator = DensityEstimator(max_range_m=500.0)
        estimator.hear_all(["a", "b", "sybil"])
        estimator.estimate()
        estimator.mark_illegitimate("sybil")
        estimator.reset_period()
        estimator.hear_all(["a", "b", "sybil"])
        assert estimator.estimate() == pytest.approx(2 / 1000.0)

    def test_reset_period_clears_heard(self):
        estimator = DensityEstimator(max_range_m=500.0)
        estimator.hear("a")
        estimator.reset_period()
        assert estimator.heard_count == 0

    def test_duplicate_hears_counted_once(self):
        estimator = DensityEstimator(max_range_m=500.0)
        estimator.hear("a")
        estimator.hear("a")
        assert estimator.heard_count == 1

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            DensityEstimator(max_range_m=0.0)
