"""Tests for the online Voiceprint pipeline."""

import numpy as np
import pytest

from repro.core import ConstantThreshold, DetectorConfig
from repro.core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from repro.sim import FieldTestConfig, run_field_test


@pytest.fixture(scope="module")
def drive():
    return run_field_test(
        FieldTestConfig(environment="rural", duration_s=120.0, seed=31)
    )


def _beacon_stream(observations):
    """All (t, identity, rssi) tuples in global time order."""
    records = []
    for identity, series in observations.items():
        for sample in series:
            records.append((sample.timestamp, identity, sample.rssi))
    records.sort(key=lambda r: (r[0], r[1]))
    return records


def _pipeline(**kwargs):
    return OnlineVoiceprint(
        max_range_m=500.0,
        threshold=ConstantThreshold(0.05046),
        detector_config=DetectorConfig(observation_time=20.0),
        **kwargs,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"detection_period_s": 0.0},
            {"density_period_s": -1.0},
            {"warmup_s": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            OnlineVoiceprintConfig(**kwargs)


class TestScheduling:
    def test_periodic_reports(self, drive):
        pipeline = _pipeline()
        reports = []
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            report = pipeline.on_beacon(identity, t, rssi)
            if report is not None:
                reports.append(report)
        # 120 s drive, first detection after 20 s warmup, then every 20 s.
        assert 4 <= len(reports) <= 6
        times = [r.timestamp for r in reports]
        deltas = np.diff(times)
        assert np.allclose(deltas, 20.0, atol=0.5)

    def test_no_detection_during_warmup(self, drive):
        pipeline = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            if t > 15.0:
                break
            assert pipeline.on_beacon(identity, t, rssi) is None

    def test_density_estimated(self, drive):
        pipeline = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            pipeline.on_beacon(identity, t, rssi)
        # 5 physical identities + 2 sybils heard within 500 m coverage.
        assert pipeline.current_density_vhls_per_km > 0.0


class TestVerdicts:
    def test_attacker_confirmed(self, drive):
        pipeline = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            pipeline.on_beacon(identity, t, rssi)
        assert {"1", "101", "102"} <= set(pipeline.confirmed_sybils)

    def test_normal_nodes_not_confirmed(self, drive):
        pipeline = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            pipeline.on_beacon(identity, t, rssi)
        assert "2" not in pipeline.confirmed_sybils
        assert "4" not in pipeline.confirmed_sybils

    def test_confirmation_debounces_single_flag(self):
        """One noisy period must not confirm anyone."""
        pipeline = _pipeline(
            config=OnlineVoiceprintConfig(confirmation_window=3)
        )
        rng = np.random.default_rng(0)
        # Two honest-but-similar streams for 25 s: the forced min-max
        # zero flags them in the first (and only) period.
        base = np.cumsum(rng.normal(0, 1.0, 250))
        for i in range(250):
            t = i * 0.1
            pipeline.on_beacon("a", t, float(-70 + base[i] + rng.normal(0, 0.3)))
            pipeline.on_beacon("b", t, float(-72 + base[i] + rng.normal(0, 0.3)))
            pipeline.on_beacon("c", t, float(-80 + 5 * np.sin(t) + rng.normal(0, 1)))
        assert pipeline.reports  # at least one period fired
        assert pipeline.confirmed_sybils == frozenset()

    def test_force_detection(self, drive):
        pipeline = _pipeline()
        stream = _beacon_stream(drive.observations["3"])
        for t, identity, rssi in stream[:3000]:
            pipeline.on_beacon(identity, t, rssi)
        report = pipeline.force_detection(now=stream[2999][0])
        assert report is pipeline.last_report

    def test_reset(self, drive):
        pipeline = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"])[:2000]:
            pipeline.on_beacon(identity, t, rssi)
        pipeline.reset()
        assert pipeline.reports == []
        assert pipeline.confirmed_sybils == frozenset()
        assert pipeline.last_report is None

    def test_reset_clears_estimator_illegitimate_set(self, drive):
        """Regression: reset() used to keep the density estimator's
        illegitimate-identity set, so verdicts from the previous trip
        silently deflated the next trip's density estimates."""
        pipeline = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            pipeline.on_beacon(identity, t, rssi)
        assert pipeline.confirmed_sybils  # attacker caught on trip one
        assert pipeline.estimator.illegitimate_ids
        pipeline.reset()
        assert pipeline.estimator.illegitimate_ids == frozenset()

    def test_density_unbiased_after_reset(self, drive):
        """A fresh trip after reset() must count identities like a brand
        new pipeline would — nobody starts the trip pre-convicted."""
        recycled = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            recycled.on_beacon(identity, t, rssi)
        recycled.reset()
        fresh = _pipeline()
        for t, identity, rssi in _beacon_stream(drive.observations["3"]):
            recycled.on_beacon(identity, t, rssi)
            fresh.on_beacon(identity, t, rssi)
        assert (
            recycled.current_density_vhls_per_km
            == fresh.current_density_vhls_per_km
        )
