"""Tests for repro.obs.telemetry — snapshot deltas, rate gauges, the
span→histogram bridge, the HTTP endpoint, and the end-to-end telemetry
stack around an online pipeline run."""

import http.client
import io
import json

import numpy as np
import pytest

from repro.core.detector import DetectorConfig
from repro.core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from repro.core.thresholds import ConstantThreshold
from repro.obs.flightrec import FlightRecorder, TeeSpanExporter
from repro.obs.health import HealthMonitor, HealthThresholds
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE
from repro.obs.telemetry import (
    Snapshotter,
    SpanLatencyRecorder,
    TelemetryServer,
)
from repro.obs.trace import Tracer


def http_get(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestSpanLatencyRecorder:
    def test_finished_spans_land_in_phase_histograms(self):
        registry = MetricsRegistry()
        recorder = SpanLatencyRecorder(registry)
        recorder.export({"name": "pairwise_dtw", "duration_ms": 5.0})
        recorder.export({"name": "pairwise_dtw", "duration_ms": 7.0})
        recorder.export({"name": "normalise", "duration_ms": 1.0})
        pairwise = registry.histogram("phase.pairwise_dtw_ms")
        assert pairwise.count == 2
        assert pairwise.summary()["sum"] == pytest.approx(12.0)
        assert registry.histogram("phase.normalise_ms").count == 1

    def test_partial_records_ignored(self):
        registry = MetricsRegistry()
        recorder = SpanLatencyRecorder(registry)
        recorder.export({"name": "x"})  # no duration (partial flush)
        recorder.export({"duration_ms": 1.0})  # no name
        assert registry.to_dict()["histograms"] == {}

    def test_wired_as_tracer_exporter(self):
        registry = MetricsRegistry()
        tracer = Tracer(exporter=SpanLatencyRecorder(registry))
        with tracer.span("detection"):
            pass
        assert registry.histogram("phase.detection_ms").count == 1

    def test_reservoir_cap_applied(self):
        registry = MetricsRegistry()
        recorder = SpanLatencyRecorder(registry, max_samples=8)
        for i in range(50):
            recorder.export({"name": "p", "duration_ms": float(i)})
        histogram = registry.histogram("phase.p_ms")
        assert histogram.count == 50
        assert histogram.samples_kept == 8


class TestSnapshotterMath:
    def test_first_tick_has_no_dt_or_rates(self):
        registry = MetricsRegistry()
        registry.counter("sim.beacons").inc(10)
        snap = Snapshotter(registry)
        record = snap.tick(now=0.0)
        assert record["dt_s"] is None
        entry = record["counters"]["sim.beacons"]
        assert entry == {"value": 10.0, "delta": 10.0}

    def test_counter_delta_and_rate(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.beacons")
        counter.inc(10)
        snap = Snapshotter(registry)
        snap.tick(now=0.0)
        counter.inc(20)
        record = snap.tick(now=2.0)
        assert record["dt_s"] == pytest.approx(2.0)
        assert record["counters"]["sim.beacons"] == {
            "value": 30.0,
            "delta": 20.0,
            "rate": 10.0,
        }
        assert registry.gauge(
            "rate.sim.beacons_per_s"
        ).value == pytest.approx(10.0)

    def test_ratio_gauge_from_cache_counter_deltas(self):
        registry = MetricsRegistry()
        hits = registry.counter("detector.cache_hits")
        pairs = registry.counter("detector.pairs_compared")
        snap = Snapshotter(registry)
        snap.tick(now=0.0)
        hits.inc(3)
        pairs.inc(6)
        snap.tick(now=1.0)
        assert registry.gauge(
            "rate.pairwise_cache_hit_rate"
        ).value == pytest.approx(0.5)

    def test_ratio_gauge_skipped_without_denominator_activity(self):
        registry = MetricsRegistry()
        registry.counter("detector.cache_hits")
        registry.counter("detector.pairs_compared")
        snap = Snapshotter(registry)
        snap.tick(now=0.0)
        snap.tick(now=1.0)
        assert registry.gauge("rate.pairwise_cache_hit_rate").value is None

    def test_histogram_count_delta(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("detector.detect_ms")
        histogram.observe(1.0)
        snap = Snapshotter(registry)
        snap.tick(now=0.0)
        histogram.observe(2.0)
        histogram.observe(3.0)
        record = snap.tick(now=1.0)
        entry = record["histograms"]["detector.detect_ms"]
        assert entry["count"] == 3
        assert entry["count_delta"] == 2

    def test_jsonl_emission_to_stream(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        buffer = io.StringIO()
        snap = Snapshotter(registry, out=buffer)
        snap.tick(now=0.0)
        snap.tick(now=1.0)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert all(r["type"] == "snapshot" for r in records)
        assert records[1]["counters"]["c"]["delta"] == 0.0

    def test_jsonl_emission_to_path(self, tmp_path):
        out = tmp_path / "snapshots.jsonl"
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snap = Snapshotter(registry, out=str(out))
        snap.tick(now=0.0)
        snap.close()
        records = [
            json.loads(line)
            for line in out.read_text().strip().splitlines()
        ]
        # one manual tick + close()'s final tick
        assert len(records) == 2

    def test_tick_drives_health_watchdog(self):
        # The snapshotter's staleness tick is wall-based (the monitor's
        # clock-source contract): inject a fake wall clock and stall it.
        wall = [100.0]
        registry = MetricsRegistry()
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0),
            registry=registry,
            wall_clock=lambda: wall[0],
        )
        monitor.beat(0.0)
        snap = Snapshotter(registry, health=monitor)
        wall[0] = 101.0
        snap.tick(now=1.0)
        assert monitor.healthy
        wall[0] = 160.0
        snap.tick(now=60.0)
        assert [a.kind for a in monitor.recent_alerts] == ["silence"]

    def test_background_thread_ticks(self):
        registry = MetricsRegistry()
        snap = Snapshotter(registry, interval_s=0.01)
        snap.start()
        import time

        deadline = time.monotonic() + 2.0
        while snap.ticks == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        snap.stop()
        assert snap.ticks >= 1

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Snapshotter(MetricsRegistry(), interval_s=0.0)


class TestTelemetryServer:
    def test_metrics_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("detector.pairs_compared").inc(6)
        server = TelemetryServer(registry).start()
        try:
            status, headers, body = http_get(server.port, "/metrics")
        finally:
            server.stop()
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert b"repro_detector_pairs_compared_total 6.0" in body

    def test_health_endpoint_ok_then_503_after_alert(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor(
            HealthThresholds(max_detect_ms=1.0), registry=registry
        )
        server = TelemetryServer(registry, health=monitor).start()
        try:
            status, _, body = http_get(server.port, "/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            from tests.test_obs_health import make_report

            monitor.on_report(make_report(), latency_ms=50.0)
            status, _, body = http_get(server.port, "/health")
            assert status == 503
            document = json.loads(body)
            assert document["status"] == "alert"
            assert document["alerts"][0]["kind"] == "detect_latency"
        finally:
            server.stop()

    def test_health_without_monitor_is_plain_ok(self):
        server = TelemetryServer(MetricsRegistry()).start()
        try:
            status, _, body = http_get(server.port, "/health")
        finally:
            server.stop()
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unknown_path_is_404(self):
        server = TelemetryServer(MetricsRegistry()).start()
        try:
            status, _, _ = http_get(server.port, "/nope")
        finally:
            server.stop()
        assert status == 404

    def test_port_is_none_until_started(self):
        server = TelemetryServer(MetricsRegistry())
        assert server.port is None
        assert server.url is None
        server.start()
        try:
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.stop()


class TestOnlineTelemetryAcceptance:
    """ISSUE acceptance: a telemetry-enabled online run serves live
    Prometheus text (pairwise cache + per-phase latency series), the
    health monitor alerts on an injected stall, and the flight recorder
    dumps a parseable post-mortem for it."""

    def test_full_stack(self, tmp_path):
        postmortem = tmp_path / "postmortem.jsonl"
        registry = MetricsRegistry()
        tracer = Tracer()
        recorder = FlightRecorder(str(postmortem), tracer=tracer)
        tracer.exporter = TeeSpanExporter(
            SpanLatencyRecorder(registry), recorder
        )
        monitor = HealthMonitor(
            HealthThresholds(max_silence_s=5.0), registry=registry
        )
        monitor.attach_recorder(recorder)
        pipeline = OnlineVoiceprint(
            max_range_m=500.0,
            threshold=ConstantThreshold(0.05),
            detector_config=DetectorConfig(
                observation_time=5.0, min_samples=10
            ),
            config=OnlineVoiceprintConfig(
                detection_period_s=5.0, density_period_s=2.0
            ),
            registry=registry,
            tracer=tracer,
            health=monitor,
        )
        snapshotter = Snapshotter(registry, health=monitor)
        snapshotter.tick(now=0.0)

        rng = np.random.default_rng(7)
        t = 0.0
        while t < 12.0:
            for identity in ("a", "b", "c"):
                pipeline.on_beacon(identity, t, -70.0 + rng.normal(0, 2))
            t += 0.1
        assert len(pipeline.reports) >= 1
        assert monitor.healthy

        # Injected detector stall: the next beacon arrives after a
        # silence far beyond the 5 s threshold.
        pipeline.on_beacon("a", 60.0, -70.0)
        kinds = [a.kind for a in monitor.recent_alerts]
        assert "beacon_gap" in kinds
        assert recorder.dumps_written == 1

        # The post-mortem bundle is parseable JSONL and names the alert.
        lines = postmortem.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        header = records[0]
        assert header["type"] == "postmortem"
        assert header["reason"] == "alert:beacon_gap"
        kinds_in_dump = {r["type"] for r in records[1:]}
        assert "alert" in kinds_in_dump
        assert "report" in kinds_in_dump  # detection reports were buffered
        assert "span" in kinds_in_dump

        # Live Prometheus exposition includes the pairwise-cache and
        # per-phase latency series.
        snapshotter.tick(now=12.0)
        server = TelemetryServer(registry, health=monitor).start()
        try:
            status, headers, body = http_get(server.port, "/metrics")
            health_status, _, health_body = http_get(
                server.port, "/health"
            )
        finally:
            server.stop()
        assert status == 200
        text = body.decode("utf-8")
        assert "repro_detector_cache_hits_total" in text
        assert "repro_rate_pairwise_cache_hit_rate" in text
        assert 'repro_phase_pairwise_dtw_ms{quantile="0.95"}' in text
        assert "repro_rate_detector_beacons_observed_per_s" in text
        assert health_status == 503
        assert json.loads(health_body)["alerts"]


class TestSnapshotterEdgeCases:
    def test_counter_reset_counts_new_value_as_delta(self):
        registry = MetricsRegistry()
        registry.counter("detector.beacons_observed").inc(10)
        snapshotter = Snapshotter(registry, interval_s=1.0)
        snapshotter.tick(now=0.0)
        # Mid-run reset (detector.reset() re-arming observability):
        # the counter restarts below its last-seen value.
        registry.reset()
        registry.counter("detector.beacons_observed").inc(3)
        record = snapshotter.tick(now=1.0)
        entry = record["counters"]["detector.beacons_observed"]
        assert entry["delta"] == 3.0
        assert entry["rate"] == pytest.approx(3.0)

    def test_histogram_reset_counts_new_totals_as_delta(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("detector.detect_ms")
        for value in (5.0, 7.0, 9.0):
            histogram.observe(value)
        snapshotter = Snapshotter(registry, interval_s=1.0)
        snapshotter.tick(now=0.0)
        registry.reset()
        registry.histogram("detector.detect_ms").observe(4.0)
        record = snapshotter.tick(now=1.0)
        summary = record["histograms"]["detector.detect_ms"]
        assert summary["count_delta"] == 1
        assert summary["sum_delta"] == pytest.approx(4.0)

    def test_zero_dt_tick_produces_no_rates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        snapshotter = Snapshotter(registry, interval_s=1.0)
        snapshotter.tick(now=5.0)
        registry.counter("c").inc(5)
        record = snapshotter.tick(now=5.0)  # same instant: dt == 0
        assert record["dt_s"] == 0.0
        assert "rate" not in record["counters"]["c"]
        assert registry.gauge("rate.c_per_s").value is None

    def test_tsdb_and_drift_fed_every_tick(self):
        from repro.obs.drift import DriftMonitor
        from repro.obs.tsdb import TimeSeriesDB

        registry = MetricsRegistry()
        tsdb = TimeSeriesDB()
        drift = DriftMonitor(registry=registry, health=None)
        snapshotter = Snapshotter(
            registry, interval_s=1.0, tsdb=tsdb, drift=drift
        )
        registry.counter("detector.beacons_observed").inc(4)
        for tick in range(3):
            registry.counter("detector.beacons_observed").inc(4)
            snapshotter.tick(now=float(tick))
        assert drift.ticks == 3
        # Rates exist from the second tick on, and each one lands in
        # the store.
        assert tsdb.latest("rate.detector.beacons_observed") == 4.0
        assert len(tsdb.query("rate.detector.beacons_observed")) == 2

    def test_ratio_gauges_visible_in_same_tick_record(self):
        registry = MetricsRegistry()
        snapshotter = Snapshotter(registry, interval_s=1.0)
        snapshotter.tick(now=0.0)
        registry.counter("detector.cache_hits").inc(3)
        registry.counter("detector.pairs_compared").inc(4)
        record = snapshotter.tick(now=1.0)
        # The freshly computed ratio is folded into the record the
        # TSDB/drift observers see, not deferred to the next tick.
        assert record["gauges"]["rate.pairwise_cache_hit_rate"] == 0.75


class TestTelemetryServerHardening:
    def test_series_404_without_store(self):
        server = TelemetryServer(MetricsRegistry()).start()
        try:
            status, _, body = http_get(server.port, "/series")
        finally:
            server.stop()
        assert status == 404
        assert b"--watch-record" in body

    def test_series_round_trip_through_payload(self):
        from repro.obs.tsdb import TimeSeriesDB

        tsdb = TimeSeriesDB()
        for tick in range(5):
            tsdb.record("m", float(tick), t=float(tick))
        server = TelemetryServer(MetricsRegistry(), tsdb=tsdb).start()
        try:
            status, headers, body = http_get(server.port, "/series")
        finally:
            server.stop()
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        rebuilt = TimeSeriesDB.from_payload(json.loads(body))
        assert rebuilt.latest("m") == 4.0
        assert rebuilt.samples == 5

    def test_responses_close_the_connection(self):
        server = TelemetryServer(MetricsRegistry()).start()
        try:
            _, headers, _ = http_get(server.port, "/metrics")
        finally:
            server.stop()
        assert headers["Connection"] == "close"

    def test_stalled_reader_is_dropped_and_server_stays_responsive(self):
        import socket as socket_module
        import time as time_module

        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        server = TelemetryServer(registry, request_timeout_s=0.3).start()
        try:
            # A client that connects, sends half a request, and stalls.
            stalled = socket_module.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            stalled.sendall(b"GET /metrics HTTP/1.1\r\n")  # no final CRLF
            deadline = time_module.monotonic() + 5.0
            try:
                # The handler times out reading and drops the
                # connection: the stalled client sees EOF.
                while True:
                    chunk = stalled.recv(1024)
                    if not chunk:
                        break
                    assert time_module.monotonic() < deadline
            finally:
                stalled.close()
            # And the server still answers fresh scrapes.
            status, _, body = http_get(server.port, "/metrics")
            assert status == 200
            assert b"repro_c_total 1.0" in body
        finally:
            server.stop()

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            TelemetryServer(MetricsRegistry(), request_timeout_s=0.0)
