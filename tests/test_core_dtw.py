"""Unit tests for repro.core.dtw (exact DTW, Eqs. 3-6)."""

import numpy as np
import pytest

from repro.core.distances import absolute_cost
from repro.core.dtw import dtw, dtw_banded, dtw_distance, dtw_windowed, warp_path_cells


class TestPaperExample:
    """Fig. 9's worked example, as discussed in DESIGN.md (E4)."""

    X = [1.0, 1.0, 4.0, 1.0, 1.0]
    Y = [2.0, 2.0, 2.0, 4.0, 2.0, 2.0]

    def test_distance_under_squared_cost(self):
        # Eqs. 3-6 verbatim give 5, not the figure's printed 9.
        assert dtw(self.X, self.Y).distance == 5.0

    def test_distance_under_absolute_cost(self):
        window = [(i, j) for i in range(1, 6) for j in range(1, 7)]
        result = dtw_windowed(self.X, self.Y, window, cost_fn=absolute_cost)
        assert result.distance == 5.0

    def test_path_endpoints(self):
        path = dtw(self.X, self.Y).path
        assert path[0] == (1, 1)
        assert path[-1] == (5, 6)

    def test_path_satisfies_monotonicity(self):
        assert warp_path_cells(dtw(self.X, self.Y).path)


class TestBasicProperties:
    def test_identity_is_zero(self):
        x = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw(x, x).distance == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=20), rng.normal(size=25)
        assert dtw(x, y).distance == pytest.approx(dtw(y, x).distance)

    def test_single_elements(self):
        result = dtw([3.0], [5.0])
        assert result.distance == 4.0
        assert result.path == ((1, 1),)

    def test_unequal_lengths_supported(self):
        assert dtw([1.0, 2.0], [1.0, 1.5, 2.0]).distance >= 0.0

    def test_constant_shift_costs(self):
        # series differing by a constant c: every matched pair costs c^2
        x = np.zeros(5)
        y = np.ones(5) * 2.0
        assert dtw(x, y).distance == pytest.approx(4.0 * 5)

    def test_warping_absorbs_time_shift(self):
        x = np.array([0, 0, 1, 5, 1, 0, 0], dtype=float)
        y = np.array([0, 1, 5, 1, 0, 0, 0], dtype=float)
        assert dtw(x, y).distance == 0.0
        n = x.size
        from repro.core.distances import euclidean_distance

        assert euclidean_distance(x, y) > 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw([], [1.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            dtw([float("nan")], [1.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dtw(np.zeros((2, 2)), [1.0])


class TestDtwDistanceFastPath:
    def test_matches_full_dtw(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            n, m = rng.integers(2, 30, size=2)
            x, y = rng.normal(size=n), rng.normal(size=m)
            assert dtw_distance(x, y) == pytest.approx(dtw(x, y).distance)


class TestBanded:
    def test_full_band_equals_exact(self):
        rng = np.random.default_rng(5)
        x, y = rng.normal(size=15), rng.normal(size=18)
        banded = dtw_banded(x, y, radius=20)
        assert banded.distance == pytest.approx(dtw(x, y).distance)

    def test_band_is_upper_bound(self):
        rng = np.random.default_rng(6)
        x, y = rng.normal(size=30), rng.normal(size=30)
        exact = dtw(x, y).distance
        for radius in (0, 1, 3, 8):
            assert dtw_banded(x, y, radius).distance >= exact - 1e-12

    def test_band_shrinks_monotonically(self):
        rng = np.random.default_rng(7)
        x, y = rng.normal(size=25), rng.normal(size=25)
        distances = [dtw_banded(x, y, r).distance for r in (0, 2, 5, 10, 25)]
        assert all(a >= b - 1e-12 for a, b in zip(distances, distances[1:]))

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            dtw_banded([1.0], [1.0], radius=-1)


class TestWindowed:
    def test_requires_corner_cells(self):
        with pytest.raises(ValueError):
            dtw_windowed([1.0, 2.0], [1.0, 2.0], [(2, 2)])
        with pytest.raises(ValueError):
            dtw_windowed([1.0, 2.0], [1.0, 2.0], [(1, 1)])

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            dtw_windowed([1.0], [1.0], [])

    def test_disconnected_window_rejected(self):
        # (1,1) and (3,3) with nothing joining them.
        with pytest.raises(ValueError):
            dtw_windowed([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], [(1, 1), (3, 3)])

    def test_full_window_matches_exact(self):
        rng = np.random.default_rng(8)
        x, y = rng.normal(size=10), rng.normal(size=12)
        window = [(i, j) for i in range(1, 11) for j in range(1, 13)]
        assert dtw_windowed(x, y, window).distance == pytest.approx(
            dtw(x, y).distance
        )

    def test_out_of_bounds_cell_rejected(self):
        with pytest.raises(ValueError):
            dtw_windowed([1.0], [1.0], [(0, 1), (1, 1)])


class TestWarpPathValidation:
    def test_valid_path(self):
        assert warp_path_cells(((1, 1), (2, 2), (2, 3), (3, 3)))

    def test_must_start_at_origin(self):
        assert not warp_path_cells(((2, 2), (3, 3)))

    def test_no_backwards_steps(self):
        assert not warp_path_cells(((1, 1), (2, 2), (1, 3)))

    def test_no_repeats(self):
        assert not warp_path_cells(((1, 1), (1, 1)))

    def test_no_jumps(self):
        assert not warp_path_cells(((1, 1), (3, 2)))

    def test_empty_invalid(self):
        assert not warp_path_cells(())
