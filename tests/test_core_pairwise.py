"""Tests for repro.core.pairwise — kernels, bounds, cache, pruning.

The engine's contract is *bit-equality*: everything it answers (kernel
distances, cached values, flag sets under pruning) must be exactly what
the legacy per-pair scalar loop would have produced, not merely close.
The property tests below therefore compare with ``==`` on floats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.dtw import dtw
from repro.core.fastdtw import dtw_banded_fast, fastdtw
from repro.core.normalization import minmax_distances
from repro.core.pairwise import (
    PairwiseEngine,
    band_cells,
    dtw_band_lower_bound,
    dtw_band_upper_bound,
    dtw_banded_batch,
    dtw_banded_vec,
    get_engine_defaults,
    lb_kim,
    set_engine_defaults,
)
from repro.core.thresholds import ConstantThreshold
from repro.obs.metrics import MetricsRegistry

_series = st.lists(
    st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=40,
)


def _registry():
    return MetricsRegistry(enabled=True)


def _naive_distances(arrays, radius=10, path_norm=True):
    ids = sorted(arrays)
    out = {}
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            result = dtw_banded_fast(arrays[a], arrays[b], radius)
            out[(a, b)] = (
                result.distance / len(result.path) if path_norm else result.distance
            )
    return out


def _scenario_arrays(rng, n_ids=6, n_min=80, n_max=220, similar=2):
    """Random identity series, some near-duplicates (sybil-like)."""
    base = rng.normal(size=n_max)
    arrays = {}
    for i in range(n_ids):
        n = int(rng.integers(n_min, n_max + 1))
        if i < similar:
            arrays[f"id{i}"] = base[:n] + rng.normal(scale=0.05, size=n)
        else:
            arrays[f"id{i}"] = rng.normal(size=n)
    return arrays


class TestVectorKernel:
    @given(x=_series, y=_series, radius=st.integers(0, 12))
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar_banded_exactly(self, x, y, radius):
        ref = dtw_banded_fast(np.array(x), np.array(y), radius)
        got = dtw_banded_vec(np.array(x), np.array(y), radius)
        assert got.distance == ref.distance
        assert got.path == ref.path
        assert got.cells == ref.cells

    @given(x=_series, y=_series)
    @settings(max_examples=40, deadline=None)
    def test_full_band_matches_exact_dtw_distance(self, x, y):
        # A radius covering the whole matrix relaxes every cell, so the
        # banded optimum equals unconstrained DTW.
        radius = len(x) + len(y)
        got = dtw_banded_vec(np.array(x), np.array(y), radius)
        assert got.distance == dtw(np.array(x), np.array(y)).distance

    def test_typical_detector_window(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=200), rng.normal(size=200)
        ref = dtw_banded_fast(x, y, 10)
        got = dtw_banded_vec(x, y, 10)
        assert (got.distance, got.path, got.cells) == (
            ref.distance,
            ref.path,
            ref.cells,
        )

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            dtw_banded_vec(np.ones(5), np.ones(5), -1)
        with pytest.raises(ValueError):
            dtw_banded_vec(np.ones(0), np.ones(5), 2)
        with pytest.raises(ValueError):
            dtw_banded_vec(np.ones((2, 2)), np.ones(5), 2)


class TestBatchKernel:
    @given(
        shapes=st.tuples(st.integers(2, 50), st.integers(2, 50)),
        count=st.integers(1, 6),
        radius=st.integers(0, 12),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_banded_exactly(self, shapes, count, radius, seed):
        n, m = shapes
        rng = np.random.default_rng(seed)
        xs = [rng.normal(size=n) for _ in range(count)]
        ys = [rng.normal(size=m) for _ in range(count)]
        got = dtw_banded_batch(xs, ys, radius)
        assert len(got) == count
        for (distance, path_len, cells), x, y in zip(got, xs, ys):
            ref = dtw_banded_fast(x, y, radius)
            assert distance == ref.distance
            assert path_len == len(ref.path)
            assert cells == ref.cells

    def test_empty_batch(self):
        assert dtw_banded_batch([], [], 5) == []

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValueError):
            dtw_banded_batch([np.ones(5), np.ones(6)], [np.ones(5)] * 2, 2)
        with pytest.raises(ValueError):
            dtw_banded_batch([np.ones(5)], [np.ones(5), np.ones(5)], 2)


class TestBounds:
    @given(x=_series, y=_series, radius=st.integers(0, 12))
    @settings(max_examples=80, deadline=None)
    def test_sandwich_banded_dtw(self, x, y, radius):
        xa, ya = np.array(x), np.array(y)
        distance = dtw_banded_fast(xa, ya, radius).distance
        lower = dtw_band_lower_bound(xa, ya, radius)
        upper, upper_len = dtw_band_upper_bound(xa, ya, radius)
        assert lb_kim(xa, ya) <= distance + 1e-9
        assert lower <= distance + 1e-9
        assert distance <= upper + 1e-9
        assert max(len(x), len(y)) <= upper_len <= len(x) + len(y) - 1

    @given(x=_series, radius=st.integers(0, 12), seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_equal_length_upper_bound_is_euclidean(self, x, radius, seed):
        xa = np.array(x)
        ya = xa + np.random.default_rng(seed).normal(size=xa.size)
        upper, upper_len = dtw_band_upper_bound(xa, ya, radius)
        euclid = float(((xa - ya) ** 2).sum())
        assert upper == pytest.approx(euclid, abs=1e-12)
        assert upper_len == xa.size

    def test_band_cells_matches_kernel_work(self):
        rng = np.random.default_rng(5)
        x, y = rng.normal(size=120), rng.normal(size=100)
        assert band_cells(120, 100, 10) == dtw_banded_fast(x, y, 10).cells


class TestEngineCompare:
    def test_bit_equal_to_naive_loop(self):
        rng = np.random.default_rng(9)
        arrays = _scenario_arrays(rng)
        engine = PairwiseEngine(band_radius=10, cache_size=64, registry=_registry())
        keys = {k: v.tobytes() for k, v in arrays.items()}
        distances, stats = engine.compare(arrays, keys, "tag")
        assert distances == _naive_distances(arrays)
        assert stats.pairs == stats.exact == len(distances)
        assert stats.cache_hits == 0

    @pytest.mark.parametrize(
        "engine_kwargs,ref",
        [
            (
                {"band_radius": None, "fastdtw_radius": 1},
                lambda x, y: fastdtw(x, y, radius=1),
            ),
            ({"use_exact_dtw": True}, lambda x, y: dtw(x, y)),
            (
                {"band_radius": 10, "normalize_by_path_length": False},
                lambda x, y: dtw_banded_fast(x, y, 10),
            ),
        ],
    )
    def test_other_kernel_modes(self, engine_kwargs, ref):
        rng = np.random.default_rng(10)
        arrays = {k: rng.normal(size=120) for k in "abcd"}
        engine = PairwiseEngine(registry=_registry(), **engine_kwargs)
        distances, _ = engine.compare(arrays)
        path_norm = engine_kwargs.get("normalize_by_path_length", True)
        for (a, b), value in distances.items():
            result = ref(arrays[a], arrays[b])
            expected = (
                result.distance / len(result.path) if path_norm else result.distance
            )
            assert value == expected

    def test_cache_hits_and_counters(self):
        rng = np.random.default_rng(11)
        arrays = {k: rng.normal(size=150) for k in "abcd"}
        keys = {k: v.tobytes() for k, v in arrays.items()}
        registry = _registry()
        engine = PairwiseEngine(band_radius=10, cache_size=32, registry=registry)
        first, stats1 = engine.compare(arrays, keys, "s")
        second, stats2 = engine.compare(arrays, keys, "s")
        assert second == first
        assert stats2.cache_hits == 6 and stats2.exact == 0 and stats2.cells == 0
        assert stats2.cells_saved == stats1.cells
        assert registry.counter("detector.cache_hits").value == 6
        assert registry.counter("detector.pairs_compared").value == 12
        assert registry.counter("detector.dtw_cells").value == stats1.cells

    def test_scale_tag_invalidates_cache(self):
        rng = np.random.default_rng(12)
        arrays = {k: rng.normal(size=100) for k in "ab"}
        keys = {k: v.tobytes() for k, v in arrays.items()}
        engine = PairwiseEngine(band_radius=10, cache_size=32, registry=_registry())
        engine.compare(arrays, keys, "scale-A")
        _, stats = engine.compare(arrays, keys, "scale-B")
        assert stats.cache_hits == 0 and stats.exact == 1

    def test_lru_eviction(self):
        rng = np.random.default_rng(13)
        arrays = {k: rng.normal(size=100) for k in "abc"}  # 3 pairs
        keys = {k: v.tobytes() for k, v in arrays.items()}
        engine = PairwiseEngine(band_radius=10, cache_size=2, registry=_registry())
        engine.compare(arrays, keys, "s")
        assert engine.cache_len == 2  # oldest pair evicted
        _, stats = engine.compare(arrays, keys, "s")
        assert 0 < stats.cache_hits < 3

    def test_cache_disabled(self):
        rng = np.random.default_rng(14)
        arrays = {k: rng.normal(size=100) for k in "ab"}
        engine = PairwiseEngine(band_radius=10, cache_size=0, registry=_registry())
        assert not engine.cache_enabled
        _, stats1 = engine.compare(arrays, {k: v.tobytes() for k, v in arrays.items()}, "s")
        _, stats2 = engine.compare(arrays, {k: v.tobytes() for k, v in arrays.items()}, "s")
        assert stats1.cache_misses == 0 and stats2.cache_hits == 0
        assert stats2.exact == 1

    def test_workers_match_inline(self):
        rng = np.random.default_rng(15)
        arrays = _scenario_arrays(rng, n_ids=7)
        inline = PairwiseEngine(band_radius=10, workers=0, registry=_registry())
        pooled = PairwiseEngine(band_radius=10, workers=2, registry=_registry())
        got_inline, _ = inline.compare(arrays)
        got_pooled, _ = pooled.compare(arrays)
        assert got_pooled == got_inline


class TestCompareDecided:
    @pytest.mark.parametrize("threshold_on", ["normalized", "raw"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_flags_identical_to_naive(self, threshold_on, seed):
        rng = np.random.default_rng(seed)
        arrays = _scenario_arrays(rng, n_ids=int(rng.integers(3, 8)))
        naive_raw = _naive_distances(arrays)
        judged = (
            minmax_distances(naive_raw) if threshold_on == "normalized" else naive_raw
        )
        values = sorted(naive_raw.values())
        cutoffs = (
            [-0.5, 0.0, 0.05, 0.3, 0.7, 1.0, 2.0]
            if threshold_on == "normalized"
            else [0.0, values[0], values[len(values) // 2], values[-1] * 2]
        )
        for cutoff in cutoffs:
            engine = PairwiseEngine(
                band_radius=10, pruning=True, cache_size=0, registry=_registry()
            )
            distances, flags, stats = engine.compare_decided(
                arrays, None, "", cutoff, threshold_on
            )
            assert flags == {p: d <= cutoff for p, d in judged.items()}
            assert stats.exact + stats.pruned == stats.pairs
            if threshold_on == "normalized":
                # Normalized mode resolves the min-max anchors exactly,
                # so the report's extremes match the naive loop even
                # when other pairs carry bound surrogates.
                assert min(distances.values()) == min(naive_raw.values())
                assert max(distances.values()) == max(naive_raw.values())

    def test_surrogates_stay_on_correct_side(self):
        # Two tight clusters far apart: within-cluster pairs are decided
        # by the upper bound, cross-cluster pairs by the lower bound.
        rng = np.random.default_rng(21)
        wave = np.sin(np.linspace(0.0, 12.0, 200))
        arrays = {}
        for i in range(3):
            arrays[f"near{i}"] = wave + rng.normal(scale=0.01, size=200)
        for i in range(3):
            arrays[f"far{i}"] = wave[::-1] + 100.0 * (i + 1) + rng.normal(
                scale=0.01, size=200
            )
        cutoff = 0.3
        engine = PairwiseEngine(
            band_radius=10, pruning=True, cache_size=0, registry=_registry()
        )
        distances, flags, stats = engine.compare_decided(
            arrays, None, "", cutoff, "normalized"
        )
        assert stats.pruned > 0  # the scenario must actually exercise pruning
        naive_judged = minmax_distances(_naive_distances(arrays))
        assert flags == {p: d <= cutoff for p, d in naive_judged.items()}
        # Surrogates must land on their flag's side of the threshold
        # even after re-normalising the mixed exact/surrogate report.
        normalised = minmax_distances(distances)
        for pair, flag in flags.items():
            assert (normalised[pair] <= cutoff) == flag

    def test_degenerate_identical_series(self):
        base = np.sin(np.linspace(0, 6, 120))
        arrays = {k: base.copy() for k in "abc"}
        engine = PairwiseEngine(
            band_radius=10, pruning=True, cache_size=0, registry=_registry()
        )
        _, flags, _ = engine.compare_decided(arrays, None, "", 0.0, "normalized")
        assert all(flags.values())  # min-max degenerates to all-zero

    def test_cached_pairs_count_as_exact(self):
        rng = np.random.default_rng(22)
        arrays = _scenario_arrays(rng, n_ids=5)
        keys = {k: v.tobytes() for k, v in arrays.items()}
        engine = PairwiseEngine(
            band_radius=10, pruning=True, cache_size=32, registry=_registry()
        )
        engine.compare(arrays, keys, "s")  # warm the cache
        distances, flags, stats = engine.compare_decided(
            arrays, keys, "s", 0.3, "normalized"
        )
        assert stats.cache_hits == stats.pairs and stats.exact == 0
        assert distances == _naive_distances(arrays)

    def test_requires_banded_pruning(self):
        engine = PairwiseEngine(band_radius=None, pruning=True, registry=_registry())
        assert not engine.can_prune
        with pytest.raises(RuntimeError):
            engine.compare_decided({}, None, "", 0.0, "normalized")


def _feed(detector, identity, values, start=0.0, interval=0.1):
    for index, value in enumerate(values):
        detector.observe(identity, start + index * interval, value)


def _synthetic_observations(rng, n_samples=200):
    """One attacker (3 streams sharing a waveform) + two normal nodes."""
    t = np.arange(n_samples) * 0.1
    shared = (
        -70
        + 5 * np.sin(2 * np.pi * t / 15)
        + np.cumsum(rng.normal(0, 0.4, n_samples))
    )
    streams = {}
    for name, offset in (("mal", 0.0), ("syb1", 4.0), ("syb2", -3.0)):
        streams[name] = shared + offset + rng.normal(0, 0.3, n_samples)
    for name in ("norm1", "norm2"):
        streams[name] = (
            -75
            + 6 * np.sin(2 * np.pi * t / 11 + rng.uniform(0, 6))
            + np.cumsum(rng.normal(0, 0.5, n_samples))
        )
    return streams


def _detector(registry=None, **config_kwargs):
    return VoiceprintDetector(
        threshold=ConstantThreshold(0.1),
        config=DetectorConfig(**config_kwargs),
        registry=registry or _registry(),
    )


class TestDetectorIntegration:
    @pytest.mark.parametrize("scale_mode", ["median", "per-series"])
    @pytest.mark.parametrize("threshold_on", ["normalized", "raw"])
    def test_engine_report_bit_identical_to_legacy(self, scale_mode, threshold_on):
        rng = np.random.default_rng(31)
        streams = _synthetic_observations(rng)
        kwargs = {"scale_mode": scale_mode, "threshold_on": threshold_on}
        legacy = _detector(pairwise_engine=False, **kwargs)
        engine = _detector(pairwise_engine=True, **kwargs)
        for name, values in streams.items():
            _feed(legacy, name, values)
            _feed(engine, name, values)
        want = legacy.detect(density=40.0)
        got = engine.detect(density=40.0)
        assert got.raw_distances == want.raw_distances
        assert got.distances == want.distances
        assert got.sybil_pairs == want.sybil_pairs
        assert got.sybil_ids == want.sybil_ids

    @pytest.mark.parametrize("threshold_on", ["normalized", "raw"])
    def test_pruned_detect_flags_identical_to_legacy(self, threshold_on):
        rng = np.random.default_rng(32)
        streams = _synthetic_observations(rng)
        legacy = _detector(pairwise_engine=False, threshold_on=threshold_on)
        registry = _registry()
        pruned = _detector(
            registry,
            pairwise_engine=True,
            pairwise_pruning=True,
            threshold_on=threshold_on,
        )
        for name, values in streams.items():
            _feed(legacy, name, values)
            _feed(pruned, name, values)
        want = legacy.detect(density=40.0)
        got = pruned.detect(density=40.0)
        assert got.sybil_pairs == want.sybil_pairs
        assert got.sybil_ids == want.sybil_ids
        stats = pruned.pairwise_stats
        assert stats is not None
        assert stats.exact + stats.pruned + stats.cache_hits == stats.pairs
        assert (
            registry.counter("detector.pairs_compared").value == stats.pairs
        )

    def test_repeat_detect_hits_cache(self):
        rng = np.random.default_rng(33)
        streams = _synthetic_observations(rng)
        registry = _registry()
        detector = _detector(registry, pairwise_engine=True)
        for name, values in streams.items():
            _feed(detector, name, values)
        first = detector.detect(density=40.0)
        cells_after_first = registry.counter("detector.dtw_cells").value
        second = detector.detect(density=40.0)
        assert second.raw_distances == first.raw_distances
        assert second.sybil_pairs == first.sybil_pairs
        assert registry.counter("detector.dtw_cells").value == cells_after_first
        assert registry.counter("detector.cache_hits").value == len(
            first.raw_distances
        )

    def test_pairwise_stats_none_on_legacy_path(self):
        assert _detector(pairwise_engine=False).pairwise_stats is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"pairwise_cache_size": -1}, {"pairwise_workers": -2}],
    )
    def test_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)

    def test_process_defaults_plumbing(self):
        previous = set_engine_defaults(engine=False, pruning=True)
        try:
            assert get_engine_defaults().engine is False
            assert _detector().pairwise_stats is None  # inherited engine=False
            explicit = _detector(pairwise_engine=True)
            assert explicit.pairwise_stats is not None
            assert explicit._engine is not None and explicit._engine.pruning
        finally:
            set_engine_defaults(
                engine=previous.engine,
                pruning=previous.pruning,
                cache_size=previous.cache_size,
                workers=previous.workers,
            )
        assert get_engine_defaults() == previous
