"""End-to-end integration tests across the whole stack."""

import pytest

from repro.core import ConstantThreshold, DetectorConfig, LinearThreshold
from repro.core.pipeline import OnlineVoiceprint
from repro.eval.metrics import average_rates
from repro.eval.runner import run_voiceprint
from repro.eval.training import collect_training_corpus, train_boundary
from repro.io import (
    BoundaryRecord,
    load_boundary,
    load_observations,
    save_boundary,
    save_observations,
)
from repro.sim import (
    FieldTestConfig,
    HighwaySimulator,
    ScenarioConfig,
    run_field_test,
)


class TestTrainDetectRoundTrip:
    """The full deployment story: train offline, persist, detect online."""

    def test_boundary_survives_disk_and_detects(self, tmp_path):
        # 1. Train on a small sweep.
        corpus = collect_training_corpus(
            [20.0, 60.0],
            base_config=ScenarioConfig(sim_time_s=45.0),
            runs_per_density=1,
            verifiers_per_run=2,
            recorded_nodes=4,
            seed=321,
        )
        line = train_boundary(corpus)

        # 2. Persist with provenance; reload.
        path = tmp_path / "boundary.json"
        save_boundary(
            BoundaryRecord(line=line, trained_on={"densities": [20, 60]}), path
        )
        loaded = load_boundary(path).line

        # 3. Detect on a fresh, unseen run.
        config = ScenarioConfig(density_vhls_per_km=30, sim_time_s=45.0, seed=99)
        result = HighwaySimulator(config, recorded_nodes=4).run()
        outcomes = run_voiceprint(
            result, LinearThreshold.from_decision_line(loaded)
        )
        dr, fpr = average_rates(outcomes)
        assert dr is not None and dr > 0.3
        assert fpr is not None and fpr < 0.4

    def test_field_traces_survive_disk_and_confirm(self, tmp_path):
        drive = run_field_test(
            FieldTestConfig(environment="highway", duration_s=90.0, seed=55)
        )
        path = tmp_path / "drive.csv"
        save_observations(drive.observations["3"], path)

        pipeline = OnlineVoiceprint(
            max_range_m=500.0,
            threshold=ConstantThreshold(0.05046),
            detector_config=DetectorConfig(observation_time=20.0),
        )
        beacons = sorted(
            (sample.timestamp, identity, sample.rssi)
            for identity, series in load_observations(path).items()
            for sample in series
        )
        for timestamp, identity, rssi in beacons:
            pipeline.on_beacon(identity, timestamp, rssi)
        assert {"1", "101", "102"} <= set(pipeline.confirmed_sybils)
        assert not ({"2", "4"} & set(pipeline.confirmed_sybils))


class TestCrossMethodConsistency:
    """Voiceprint and the cooperative baselines on the same run."""

    @pytest.fixture(scope="class")
    def run(self):
        return HighwaySimulator(
            ScenarioConfig(density_vhls_per_km=30, sim_time_s=45.0, seed=77),
            recorded_nodes=6,
        ).run()

    def test_all_methods_beat_chance(self, run):
        from repro.baselines.cpvsad import CpvsadConfig, CpvsadDetector
        from repro.baselines.xiao import XiaoConfig, XiaoDetector
        from repro.eval.runner import run_cpvsad, run_xiao
        from repro.radio.base import LinkBudget
        from repro.radio.dual_slope import DualSlopeModel
        from repro.radio.environments import environment

        budget = LinkBudget(tx_power_dbm=20.0)
        model = DualSlopeModel(environment("highway"))
        vp = run_voiceprint(run, ConstantThreshold(0.01))
        cp = run_cpvsad(run, CpvsadDetector(budget, model, CpvsadConfig()))
        from repro.radio.shadowing import LogNormalShadowingModel

        xiao = run_xiao(
            run,
            XiaoDetector(
                budget,
                LogNormalShadowingModel(path_loss_exponent=2.0, sigma_db=3.9),
                XiaoConfig(position_tolerance_m=150.0),
            ),
        )
        for name, outcomes in (("voiceprint", vp), ("cpvsad", cp), ("xiao", xiao)):
            dr, fpr = average_rates(outcomes)
            assert dr is not None, name
            assert dr > 0.1, name

    def test_voiceprint_needs_no_other_vehicle_data(self, run):
        """The independence property: detection from one node's log only."""
        node = run.recorded_nodes[0]
        from repro.core import VoiceprintDetector

        detector = VoiceprintDetector(threshold=ConstantThreshold(0.01))
        for series in run.series_at(node).values():
            detector.load_series(series)
        report = detector.detect(density=30.0)
        # At least some of the attack visible from one vantage point.
        assert report.compared_ids


class TestDeterminism:
    def test_whole_stack_deterministic(self):
        """Same seeds, same verdicts — end to end."""
        def verdicts():
            config = ScenarioConfig(
                density_vhls_per_km=20, sim_time_s=45.0, seed=13
            )
            result = HighwaySimulator(config, recorded_nodes=3).run()
            outcomes = run_voiceprint(result, ConstantThreshold(0.01))
            return [
                (o.node, o.period_index, o.true_flagged, o.false_flagged)
                for o in outcomes
            ]

        assert verdicts() == verdicts()
