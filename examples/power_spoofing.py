#!/usr/bin/env python3
"""Why the Z-score matters: TX-power spoofing vs normalisation.

The paper's Assumption 3 lets the attacker give every Sybil identity a
different (constant) transmission power, separating the streams' RSSI
levels by several dB.  Eq. 7's normalisation cancels exactly that
constant offset.  This example measures the Sybil/neighbour separation
margin with normalisation disabled, with plain mean-centering, and with
the Z-score variants — the E12 "normalisation" ablation as a narrated
walkthrough.

Run:
    python examples/power_spoofing.py
"""

import os

from repro.eval.experiments import run_ablations
from repro.eval.reporting import render_table

# REPRO_EXAMPLE_FAST=1 shrinks the drive so the examples smoke test
# (tests/test_examples.py) runs in seconds; the walkthrough is the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    print("running the normalisation ablation (spoofed Sybil powers) ...")
    rows = run_ablations(duration_s=60.0 if FAST else 120.0)
    table = [
        (row.variant, row.sybil_max, row.other_min, row.margin, row.note)
        for row in rows
        if row.group == "normalisation"
    ]
    print(
        render_table(
            ["normalisation", "sybil max", "other min", "margin", "note"],
            table,
            title="Sybil/neighbour separation under TX-power spoofing",
        )
    )
    print()
    print("margin > 1 means every Sybil pair is closer than any honest pair.")
    print("Without normalisation the spoofed power offsets destroy the")
    print("similarity; centering (what Eq. 7 achieves for constant offsets)")
    print("restores it.")

    print()
    band = [
        (row.variant, row.sybil_max, row.other_min, row.margin)
        for row in rows
        if row.group == "dtw-band"
    ]
    print(
        render_table(
            ["DTW variant", "sybil max", "other min", "margin"],
            band,
            title="Warp-band ablation (same drive)",
        )
    )

    print()
    smart = [row for row in rows if row.group == "smart-attacker"]
    for row in smart:
        print(
            f"power-control smart attacker: margin {row.margin:.2f} "
            f"(paper's declared limitation — expected to collapse toward/below 1)"
        )


if __name__ == "__main__":
    main()
