#!/usr/bin/env python3
"""Field-test replica: four vehicles, four environments (paper §VI).

Reproduces the paper's field evaluation on synthetic drives: a convoy
of one malicious vehicle (broadcasting as itself plus Sybil identities
"101" and "102" at spoofed powers) and three honest vehicles drives the
campus, rural, urban and highway routes; normal node 3 runs Voiceprint
once per detection period with the paper's constant threshold.

The urban route contains a long red light — watch for the stationary
periods where the side-by-side normal node 2 becomes indistinguishable
from the attacker (the paper's single false positive, Fig. 14).

Run:
    python examples/field_test.py
"""

import os

from repro.eval.experiments import run_fig13, run_fig14
from repro.eval.reporting import render_table

# REPRO_EXAMPLE_FAST=1 shrinks the drives so the examples smoke test
# (tests/test_examples.py) runs in seconds; the walkthrough is the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    print("driving the four field-test routes (this takes ~a minute) ...")
    areas = run_fig13(
        duration_s=60.0 if FAST else 240.0,
        detection_period_s=20.0 if FAST else 40.0,
    )
    rows = []
    for area in areas:
        rows.append(
            (
                area.environment,
                len(area.detections),
                area.detection_rate,
                area.false_positive_rate,
                area.n_false_positive_periods,
            )
        )
    print(
        render_table(
            ["environment", "periods", "DR", "FPR", "FP periods"],
            rows,
            title="Fig. 13 — field-test detections at normal node 3",
        )
    )

    print()
    print("zooming into the urban red light (Fig. 14) ...")
    fig14 = run_fig14(
        duration_s=60.0 if FAST else 300.0,
        detection_period_s=30.0,
    )
    print(f"  stationary periods : {len(fig14.stationary_periods)}")
    print(f"  moving periods     : {len(fig14.moving_periods)}")
    if fig14.node2_distance_stationary is not None:
        print(
            "  D(malicious, node2) while stopped : "
            f"{fig14.node2_distance_stationary:.4f}"
        )
    if fig14.node2_distance_moving is not None:
        print(
            "  D(malicious, node2) while moving  : "
            f"{fig14.node2_distance_moving:.4f}"
        )
    print(
        f"  false-positive periods: {fig14.false_positives_single} single-period, "
        f"{fig14.false_positives_confirmed} after multi-period confirmation"
    )


if __name__ == "__main__":
    main()
