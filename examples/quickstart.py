#!/usr/bin/env python3
"""Quickstart: detect a Sybil attacker from raw RSSI observations.

This is the smallest end-to-end use of the public API: feed a
:class:`repro.VoiceprintDetector` the ``(identity, timestamp, RSSI)``
tuples a vehicle's radio reports, then ask it which identities share a
physical transmitter.

The beacons here come from a synthetic two-minute field-test drive
(one attacker broadcasting under three identities, three honest
vehicles), but the detector neither knows nor cares — it sees only
its own RSSI log, exactly as on a real OBU.

Run:
    python examples/quickstart.py
"""

import os

from repro import ConstantThreshold, VoiceprintDetector
from repro.core.detector import DetectorConfig
from repro.sim import FieldTestConfig, run_field_test

# REPRO_EXAMPLE_FAST=1 shrinks the drive so the examples smoke test
# (tests/test_examples.py) runs in seconds; the walkthrough is the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    # --- Simulate a drive to get realistic beacons (stand-in for a
    # real DSRC radio's log).  Vehicle "3" is our observer.
    drive = run_field_test(
        FieldTestConfig(
            environment="rural",
            duration_s=30.0 if FAST else 120.0,
            seed=42,
        )
    )
    observations = drive.observations["3"]

    # --- Collection phase: feed every received beacon to the detector.
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(0.05046),  # paper's field-test value
        config=DetectorConfig(observation_time=20.0),
    )
    n_beacons = 0
    for identity, series in observations.items():
        for sample in series:
            detector.observe(identity, sample.timestamp, sample.rssi)
            n_beacons += 1
    print(f"observed {n_beacons} beacons from {len(observations)} identities")

    # --- Comparison + confirmation: one detection at the end of the
    # drive, at the field test's nominal density of 4 vehicles/km.
    report = detector.detect(density=4.0)
    print(f"compared identities : {', '.join(report.compared_ids)}")
    print(f"distance threshold  : {report.threshold:.4f}")
    print("pairwise distances  :")
    for (a, b), distance in sorted(report.distances.items(), key=lambda kv: kv[1]):
        marker = "  << flagged" if (a, b) in report.sybil_pairs else ""
        print(f"  D({a},{b}) = {distance:.4f}{marker}")

    print(f"suspected Sybil ids : {sorted(report.sybil_ids)}")
    for cluster in report.sybil_clusters():
        print(f"  one physical attacker behind: {sorted(cluster)}")

    truth = sorted(drive.truth.illegitimate_ids)
    print(f"ground truth        : {truth}")


if __name__ == "__main__":
    main()
