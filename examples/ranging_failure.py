#!/usr/bin/env python3
"""Observation 1 walkthrough: why model-based ranging fails in VANETs.

The classic RSSI-based Sybil defences invert a propagation model to
turn signal strength into distance.  The paper's first measurement
campaign shows how badly that goes: two parked vehicles 140 m apart
"range" to 170–280 m depending on the model and the hour of the day.
This example reruns that campaign on the synthetic campus channel and
then refits the dual-slope model (Table IV) to show that even the
*right* model family needs per-environment parameters.

Run:
    python examples/ranging_failure.py
"""

import os

from repro.eval.experiments import run_observation1, run_table4
from repro.eval.reporting import render_table

# REPRO_EXAMPLE_FAST=1 shrinks the campaign so the examples smoke test
# (tests/test_examples.py) runs in seconds; the walkthrough is the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    print("Scenario 1: two vehicles, truly 140 m apart (campus) ...")
    rows = run_observation1(duration_s=60.0 if FAST else 300.0)
    table = [
        (
            row.label,
            row.n_samples,
            row.mean_dbm,
            row.std_db,
            row.true_distance_m,
            row.fspl_estimate_m,
            row.trgp_estimate_m,
        )
        for row in rows
    ]
    print(
        render_table(
            ["period", "n", "mean dBm", "std dB", "true m", "FSPL est m", "two-ray est m"],
            table,
            title="Fig. 5 — RSSI distributions and model-based range estimates",
        )
    )
    print()
    print("Scenario 2: refitting the dual-slope model per environment ...")
    fits = run_table4(n_samples=500 if FAST else 2500)
    table = [
        (
            fit.environment,
            f"{fit.dc_true:.0f}/{fit.dc_fit:.0f}",
            f"{fit.gamma1_true:.2f}/{fit.gamma1_fit:.2f}",
            f"{fit.gamma2_true:.2f}/{fit.gamma2_fit:.2f}",
            f"{fit.sigma1_true:.1f}/{fit.sigma1_fit:.1f}",
            f"{fit.sigma2_true:.1f}/{fit.sigma2_fit:.1f}",
        )
        for fit in fits
    ]
    print(
        render_table(
            ["environment", "dc true/fit", "g1 true/fit", "g2 true/fit", "s1 true/fit", "s2 true/fit"],
            table,
            title="Table IV — dual-slope parameters, generating vs refitted",
        )
    )
    print()
    print("Every environment needs different parameters — and a moving")
    print("vehicle cannot know which ones apply.  Voiceprint sidesteps the")
    print("problem by never inverting a model at all.")


if __name__ == "__main__":
    main()
