#!/usr/bin/env python3
"""Highway scenario: train a boundary, then detect under Table V traffic.

The paper's simulation workload end to end, scaled to run in about a
minute:

1. Train the density-adaptive threshold line on a small density sweep
   (the Fig. 10 pipeline).
2. Run a fresh highway simulation (5 % attackers, 3–6 Sybil identities
   each, randomised TX powers) at a chosen density.
3. Let several verifier vehicles run Voiceprint once per detection
   period and score them against ground truth (Eqs. 10–13).

Run:
    python examples/highway_attack.py [density_vhls_per_km]
"""

import os
import sys

from repro import LinearThreshold, ScenarioConfig
from repro.eval.metrics import average_rates
from repro.eval.runner import run_voiceprint
from repro.eval.training import collect_training_corpus, train_boundary
from repro.sim import HighwaySimulator

# REPRO_EXAMPLE_FAST=1 shrinks the sweep so the examples smoke test
# (tests/test_examples.py) runs in seconds; the walkthrough is the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main(density: float = 40.0) -> None:
    base = ScenarioConfig(sim_time_s=30.0 if FAST else 60.0)

    print("training the decision boundary (Fig. 10 pipeline) ...")
    corpus = collect_training_corpus(
        [10, 40] if FAST else [10, 40, 80],
        base_config=base,
        runs_per_density=1,
        verifiers_per_run=2 if FAST else 3,
        recorded_nodes=6,
        seed=1000,
    )
    line = train_boundary(corpus)
    print(
        f"  trained D <= {line.k:.6f} * den + {line.b:.6f} "
        f"on {len(corpus.points)} labelled pairs"
    )

    print(f"simulating a 2 km highway at {density:.0f} vehicles/km ...")
    config = base.with_density(density).with_seed(7)
    result = HighwaySimulator(config, recorded_nodes=3 if FAST else 8).run()
    print(
        f"  {config.n_vehicles} vehicles ({config.n_malicious} malicious), "
        f"{result.transmitted} beacons on air, "
        f"{result.loss_rate:.0%} lost to CCH saturation"
    )
    print(f"  ground-truth Sybil identities: {len(result.truth.sybil_ids)}")

    print("running Voiceprint on the recorded verifiers ...")
    outcomes = run_voiceprint(result, LinearThreshold.from_decision_line(line))
    for outcome in outcomes:
        dr = outcome.detection_rate
        fpr = outcome.false_positive_rate
        print(
            f"  {outcome.node} period {outcome.period_index}: "
            f"DR={'-' if dr is None else format(dr, '.2f')} "
            f"FPR={'-' if fpr is None else format(fpr, '.2f')} "
            f"({outcome.true_flagged}/{outcome.total_illegitimate} Sybil, "
            f"{outcome.false_flagged}/{outcome.total_legitimate} false)"
        )
    dr, fpr = average_rates(outcomes)
    print(f"average detection rate      : {dr:.3f}")
    print(f"average false positive rate : {fpr:.3f}")


if __name__ == "__main__":
    main(
        float(sys.argv[1])
        if len(sys.argv) > 1
        else (20.0 if FAST else 40.0)
    )
