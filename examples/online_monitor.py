#!/usr/bin/env python3
"""Online monitoring: the pipeline an OBU would actually run.

`OnlineVoiceprint` wraps the detector with everything a deployment
needs: it schedules detections off the beacon clock, estimates traffic
density with Eq. 9, and debounces verdicts with the paper's multi-period
confirmation.  This example streams a synthetic drive through it beacon
by beacon and prints each detection period's verdicts as they happen —
including how confirmation withholds judgement until the evidence
repeats.

Run:
    python examples/online_monitor.py
"""

import os

from repro.core import ConstantThreshold, DetectorConfig
from repro.core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from repro.sim import FieldTestConfig, run_field_test

# REPRO_EXAMPLE_FAST=1 shrinks the drive so the examples smoke test
# (tests/test_examples.py) runs in seconds; the walkthrough is the same.
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    print("simulating a 3-minute rural drive (1 attacker, 2 Sybil ids) ...")
    drive = run_field_test(
        FieldTestConfig(
            environment="rural",
            duration_s=60.0 if FAST else 180.0,
            seed=11,
        )
    )

    # Stream node 3's beacons in arrival order, as its radio saw them.
    beacons = sorted(
        (sample.timestamp, identity, sample.rssi)
        for identity, series in drive.observations["3"].items()
        for sample in series
    )
    print(f"replaying {len(beacons)} beacons through the online pipeline\n")

    pipeline = OnlineVoiceprint(
        max_range_m=500.0,
        threshold=ConstantThreshold(0.05046),
        detector_config=DetectorConfig(observation_time=20.0),
        config=OnlineVoiceprintConfig(
            detection_period_s=20.0, confirmation_window=3
        ),
    )

    for timestamp, identity, rssi in beacons:
        report = pipeline.on_beacon(identity, timestamp, rssi)
        if report is None:
            continue
        confirmed = ", ".join(sorted(pipeline.confirmed_sybils)) or "(none)"
        print(f"{report.summary()}  confirmed: {confirmed}")

    print()
    truth = ", ".join(sorted(drive.truth.illegitimate_ids))
    final = ", ".join(sorted(pipeline.confirmed_sybils)) or "(none)"
    print(f"ground truth : {truth}")
    print(f"final verdict: {final}")


if __name__ == "__main__":
    main()
